//! The certainty problem `CERT(k, q)` / `CERT(*, q)`: are all facts of a given set true in
//! every possible world of the view?
//!
//! * [`naive_gtable`] — Theorem 5.3(1) (due to Imieliński–Lipski and Vardi): for DATALOG
//!   (and a fortiori positive existential) queries on g-tables the certain answers are
//!   computed by treating the matrix of the g-table as a complete database — nulls become
//!   distinct fresh constants — and keeping the ground facts of the query answer.
//! * [`complement_search`] — the general coNP procedure for conditional tables (identity or
//!   UCQ-convertible views): a fact is certain iff no valuation makes every row miss it.
//! * [`by_enumeration`] — the fallback for first order views (coNP-complete already on
//!   Codd-tables, Theorem 5.3(2)).
//!
//! `CERT(*, q)` is answered by iterating `CERT(1, q)` over the facts — the polynomial-time
//! equivalence of Proposition 2.1(6).

use crate::certify;
use crate::common::{
    evaluation_delta, freeze_database, normalize_database, Budget, Decision, DecisionError,
    Strategy,
};
use crate::engine::{Engine, EngineConfig, MemoOp};
use pw_core::algebra::AlgebraError;
use pw_core::{CDatabase, Certificate, TableClass, View};
use pw_query::QueryClass;
use pw_relational::Instance;

/// Decide `CERT(·, q)`: is every fact of `facts` true in every world of the view?
pub fn decide(view: &View, facts: &Instance, budget: Budget) -> Result<bool, DecisionError> {
    decide_with(view, facts, &Engine::new(EngineConfig::sequential(budget))).answer
}

/// [`decide`] on an explicit [`Engine`]: the general (coNP) paths run on the engine's
/// worker pool — the per-fact complement searches are independent subtrees, so a
/// `CERT(*, q)` request parallelizes across facts as well as within each search.
/// Within each search the workers balance by work stealing (subtree re-splitting keeps
/// a skewed complement tree divisible); the static frontier split survives behind
/// [`EngineConfig::without_work_stealing`](crate::EngineConfig::without_work_stealing).
///
/// Returns a [`Decision`] carrying the answer next to the [`Strategy`] that produced
/// (or attempted) it, so the strategy survives a budget-exceeded search; the dispatch
/// (and the view→c-table conversion behind it) runs exactly once per call.
pub fn decide_with(view: &View, facts: &Instance, engine: &Engine) -> Decision {
    let (strategy, converted) = plan(view, engine.config().per_shard);
    let answer = match strategy {
        Strategy::NaiveEvaluation => {
            Ok(naive_gtable(view, facts).expect("strategy selection guarantees applicability"))
        }
        Strategy::PerShard { .. } => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => complement_search_per_shard(&db, facts, engine),
                Err(_) => Ok(false),
            }
        }
        Strategy::Backtracking => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => complement_search_with(&db, facts, engine),
                Err(_) => Ok(false),
            }
        }
        _ => by_enumeration_with(view, facts, engine),
    };
    Decision::of(answer, strategy)
}

/// [`decide_with`] plus certificate extraction: a *yes* carries
/// [`Certificate::CertainByFreeze`] (the checker replays the polynomial naive
/// evaluation), [`Certificate::EmptyRep`], or rests on [`Certificate::Exhaustive`]; a
/// *no* carries a [`Certificate::CounterWorld`] — a valuation whose world misses one of
/// the facts.
pub(crate) fn decide_certified(view: &View, facts: &Instance, engine: &Engine) -> Decision {
    if !engine.config().certify {
        return decide_with(view, facts, engine);
    }
    let (strategy, converted) = plan(view, engine.config().per_shard);
    match strategy {
        Strategy::NaiveEvaluation => {
            let answer =
                naive_gtable(view, facts).expect("strategy selection guarantees applicability");
            if answer {
                Decision::certified(Ok(true), strategy, Some(Certificate::CertainByFreeze))
            } else if !view.db.has_satisfiable_globals() {
                // Unreachable with a `false` naive answer (the empty rep is vacuously
                // certain) — defensive ordering only.
                Decision::of(Ok(false), strategy)
            } else {
                // A naive `false` means some fact is non-ground or absent from the
                // frozen world's answer; the freeze avoids the facts' active domain, so
                // *any* completion at least as generic (fresh values everywhere) misses
                // it too.  Verify locally before emitting; fall back to enumeration.
                let cert = certify::base_completion(&view.db, &certify::avoid_set(&view.db, facts))
                    .map(certify::valuation)
                    .filter(|v| {
                        v.world_of(&view.db)
                            .is_some_and(|w| !facts.is_subinstance_of(&view.query.eval(&w)))
                    })
                    .map(Certificate::counter_world)
                    .or_else(|| enumeration_counter_world(view, facts, engine));
                Decision::certified(Ok(false), strategy, cert)
            }
        }
        Strategy::PerShard { .. } => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => certified_per_shard(view, &db, facts, engine, strategy),
                Err(_) => Decision::of(Ok(false), strategy),
            }
        }
        Strategy::Backtracking => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => {
                    if !engine.has_satisfiable_globals(&db) {
                        return Decision::certified(
                            Ok(true),
                            strategy,
                            Some(empty_rep_or_exhaustive(view)),
                        );
                    }
                    let mut counter = engine.config().counter();
                    match certify::missing_witness(&db, facts, &mut counter) {
                        Ok(Some(w)) => {
                            Decision::certified(Ok(false), strategy, counter_world(view, w, facts))
                        }
                        Ok(None) => {
                            Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive))
                        }
                        Err(e) => Decision::of(Err(e), strategy),
                    }
                }
                Err(_) => Decision::of(Ok(false), strategy),
            }
        }
        _ => {
            if !view.db.has_satisfiable_globals() {
                return Decision::certified(Ok(true), strategy, Some(Certificate::EmptyRep));
            }
            let vars: Vec<_> = view.db.variables().into_iter().collect();
            let mut delta = evaluation_delta(&view.db, facts.active_domain());
            delta.extend(view.query.constants());
            let counterexample =
                engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
                    let world = valuation.world_of(&view.db)?;
                    let output = view.query.eval(&world);
                    (!facts.is_subinstance_of(&output)).then(|| valuation.clone())
                });
            match counterexample {
                Ok(Some(v)) => {
                    Decision::certified(Ok(false), strategy, Some(Certificate::counter_world(v)))
                }
                Ok(None) => Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive)),
                Err(e) => Decision::of(Err(e), strategy),
            }
        }
    }
}

/// Certified twin of [`complement_search_per_shard`] + the per-shard missing-fact
/// disjunction: same memo keys (`MemoOp::MissingAny` per populated group), entries
/// stored with their per-group certificates, and a group's counter-world stitched with
/// the other groups' base completions into a valuation of the whole database.
fn certified_per_shard(
    view: &View,
    db: &CDatabase,
    facts: &Instance,
    engine: &Engine,
    strategy: Strategy,
) -> Decision {
    if db
        .shard_groups()
        .iter()
        .any(|g| !engine.has_satisfiable_globals(g.database()))
    {
        return Decision::certified(Ok(true), strategy, Some(empty_rep_or_exhaustive(view)));
    }
    // Mirror of `missing_any_per_shard_ctx`: split the facts by owning group.
    let group_of = db.shard_group_index();
    let mut parts: Vec<Instance> = vec![Instance::new(); db.shard_groups().len()];
    let mut any_fact = false;
    for (name, rel) in facts.iter() {
        if rel.is_empty() {
            continue;
        }
        match db.table_position(name) {
            Some(pos) if db.tables()[pos].arity() == rel.arity() => {
                parts[group_of[pos]].insert_relation(name.clone(), rel.clone());
                any_fact = true;
            }
            // No such relation: missing from every world — any world is a counter.
            _ => {
                let cert = certify::base_completion(&view.db, &certify::avoid_set(&view.db, facts))
                    .map(|w| Certificate::counter_world(certify::valuation(w)));
                return Decision::certified(Ok(false), strategy, cert);
            }
        }
    }
    if !any_fact {
        return Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive));
    }
    let mut counter = engine.config().counter();
    for (g_idx, (group, part)) in db.shard_groups().iter().zip(&parts).enumerate() {
        if part.relation_count() == 0 {
            continue;
        }
        let gdb = group.database();
        let outcome = engine.memo_certified(MemoOp::MissingAny, gdb, part, None, || {
            Ok(match certify::missing_witness(gdb, part, &mut counter)? {
                Some(w) => (
                    true,
                    Some(Certificate::counter_world(certify::valuation(w))),
                ),
                None => (false, Some(Certificate::Exhaustive)),
            })
        });
        match outcome {
            Ok((true, cert)) => {
                let stitched = match cert {
                    Some(Certificate::CounterWorld { valuation }) => {
                        certify::stitch_counter_world(db, g_idx, valuation.iter().collect())
                            .and_then(|w| counter_world(view, w, facts))
                    }
                    _ => None,
                };
                return Decision::certified(Ok(false), strategy, stitched);
            }
            Ok((false, _)) => {}
            Err(e) => return Decision::of(Err(e), strategy),
        }
    }
    Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive))
}

/// Package a binding over the converted database as a counter-world of the *view*: fill
/// the view database's remaining variables with fresh constants (the c-table algebra
/// guarantees `q(σ(view.db)) = σ(converted)` for every total σ).
fn counter_world(view: &View, w: certify::Binding, facts: &Instance) -> Option<Certificate> {
    let avoid = certify::avoid_set(&view.db, facts);
    Some(Certificate::counter_world(certify::valuation(
        certify::fill_unassigned(&view.db, w, &avoid),
    )))
}

/// The vacuous-certainty certificate: [`Certificate::EmptyRep`] when the view database
/// itself shows it (the checker re-derives that), [`Certificate::Exhaustive`] in the
/// degenerate case where only the converted database's globals are unsatisfiable.
fn empty_rep_or_exhaustive(view: &View) -> Certificate {
    if view.db.has_satisfiable_globals() {
        Certificate::Exhaustive
    } else {
        Certificate::EmptyRep
    }
}

/// A counter-world by canonical-valuation enumeration — the belt-and-braces fallback
/// when a polynomial path's implicit counter-example is not directly expressible.
fn enumeration_counter_world(
    view: &View,
    facts: &Instance,
    engine: &Engine,
) -> Option<Certificate> {
    let vars: Vec<_> = view.db.variables().into_iter().collect();
    let mut delta = evaluation_delta(&view.db, facts.active_domain());
    delta.extend(view.query.constants());
    engine
        .find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
            let world = valuation.world_of(&view.db)?;
            let output = view.query.eval(&world);
            (!facts.is_subinstance_of(&output)).then(|| valuation.clone())
        })
        .ok()
        .flatten()
        .map(Certificate::counter_world)
}

/// The dispatch decision plus (when applicable) the one-time view→c-table conversion.
/// The coNP complement upgrades to [`Strategy::PerShard`] when the converted database's
/// coupling graph splits (and `per_shard` is enabled): a fact can only be missing from a
/// world of the group owning its relation, so the per-fact complement searches run
/// against per-group base stores and the certainty conjunction is unchanged.
fn plan(view: &View, per_shard: bool) -> (Strategy, Option<Result<CDatabase, AlgebraError>>) {
    let monotone = matches!(
        view.query.class(),
        QueryClass::Identity | QueryClass::PositiveExistential | QueryClass::Datalog
    );
    if monotone && view.db.classify() <= TableClass::GTable {
        (Strategy::NaiveEvaluation, None)
    } else if let Some(converted) = view.to_ctables() {
        if per_shard {
            if let Ok(db) = &converted {
                let groups = db.shard_groups().len();
                if groups > 1 {
                    return (Strategy::PerShard { groups }, Some(converted));
                }
            }
        }
        (Strategy::Backtracking, Some(converted))
    } else {
        (Strategy::WorldEnumeration, None)
    }
}

/// The strategy [`decide`] will use.
pub fn strategy(view: &View) -> Strategy {
    plan(view, true).0
}

/// Theorem 5.3(1): certainty for monotone (identity / positive existential / DATALOG)
/// queries on g-tables via naive evaluation.
///
/// Returns `None` when the preconditions do not hold (non-monotone query or a database
/// with local conditions).
pub fn naive_gtable(view: &View, facts: &Instance) -> Option<bool> {
    let monotone = matches!(
        view.query.class(),
        QueryClass::Identity | QueryClass::PositiveExistential | QueryClass::Datalog
    );
    if !monotone || view.db.classify() > TableClass::GTable {
        return None;
    }
    let Some(normalized) = normalize_database(&view.db) else {
        // Unsatisfiable global condition: there are no worlds, so every fact is vacuously
        // certain.
        return Some(true);
    };
    let (frozen, fresh) = freeze_database(&normalized, &facts.active_domain());
    let answer = view.query.eval(&frozen);
    for (name, rel) in facts.iter() {
        for fact in rel.iter() {
            let ground = fact.iter().all(|c| !fresh.contains(c));
            if !ground || !answer.contains_fact(name, fact) {
                return Some(false);
            }
        }
    }
    Some(true)
}

/// The general coNP procedure for conditional tables: every fact must be produced in every
/// world, i.e. for no fact may there exist a valuation under which all rows miss it.
pub fn complement_search(
    db: &CDatabase,
    facts: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    complement_search_with(db, facts, &Engine::new(EngineConfig::sequential(budget)))
}

/// [`complement_search`] on an explicit [`Engine`].
pub fn complement_search_with(
    db: &CDatabase,
    facts: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    if !engine.has_satisfiable_globals(db) {
        return Ok(true); // no worlds: vacuously certain
    }
    Ok(!engine.exists_world_missing_any_fact(db, facts)?)
}

/// [`complement_search_with`] over the shard groups: the same per-fact complement
/// forest, with each fact's subtree rooted in its group's base store instead of the
/// joint one.  The representation is empty iff *some* group's globals are unsatisfiable
/// (groups are variable-disjoint, so the joint conjunction factors), in which case every
/// fact is vacuously certain — matching the joint path's empty-rep rule.
pub fn complement_search_per_shard(
    db: &CDatabase,
    facts: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    if db
        .shard_groups()
        .iter()
        .any(|g| !engine.has_satisfiable_globals(g.database()))
    {
        return Ok(true); // no worlds: vacuously certain
    }
    Ok(!engine.exists_world_missing_any_fact_per_shard(db, facts)?)
}

/// [`by_enumeration`] on an explicit [`Engine`] (parallel canonical-valuation
/// enumeration).
pub fn by_enumeration_with(
    view: &View,
    facts: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    if !view.db.has_satisfiable_globals() {
        return Ok(true);
    }
    let vars: Vec<_> = view.db.variables().into_iter().collect();
    let mut delta = evaluation_delta(&view.db, facts.active_domain());
    delta.extend(view.query.constants());
    let counterexample =
        engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
            let world = valuation.world_of(&view.db)?;
            let output = view.query.eval(&world);
            (!facts.is_subinstance_of(&output)).then_some(())
        })?;
    Ok(counterexample.is_none())
}

/// Generic fallback: canonical-valuation enumeration — look for a world missing some fact.
pub fn by_enumeration(
    view: &View,
    facts: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    by_enumeration_with(view, facts, &Engine::new(EngineConfig::sequential(budget)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::{CTable, CTuple};
    use pw_query::{
        qatom, ConjunctiveQuery, DatalogProgram, FoQuery, Formula, QTerm, Query, QueryDef, Ucq,
    };
    use pw_relational::rel;

    fn budget() -> Budget {
        Budget(1_000_000)
    }

    #[test]
    fn ground_facts_are_certain_variables_are_not() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("R", 1, [vec![Term::constant(1)], vec![Term::Var(x)]]).unwrap();
        let view = View::identity(CDatabase::single(t));
        assert_eq!(strategy(&view), Strategy::NaiveEvaluation);
        assert!(decide(&view, &Instance::single("R", rel![[1]]), budget()).unwrap());
        assert!(!decide(&view, &Instance::single("R", rel![[2]]), budget()).unwrap());
    }

    #[test]
    fn naive_evaluation_for_positive_query_on_etable() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // T = {(1, x), (x, 2)}; q(a, c) :- T(a, b), T(b, c).
        // The join succeeds in every world through b = x, so (1, 2) is certain.
        let t = CTable::e_table(
            "T",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::Var(x), Term::constant(2)],
            ],
        )
        .unwrap();
        let q = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("a"), QTerm::var("c")],
                [qatom!("T"; "a", "b"), qatom!("T"; "b", "c")],
            ))),
        );
        let view = View::new(q, CDatabase::single(t));
        assert_eq!(strategy(&view), Strategy::NaiveEvaluation);
        assert!(decide(&view, &Instance::single("Q", rel![[1, 2]]), budget()).unwrap());
        assert!(!decide(&view, &Instance::single("Q", rel![[2, 1]]), budget()).unwrap());
        // Cross-check against enumeration.
        assert!(by_enumeration(&view, &Instance::single("Q", rel![[1, 2]]), budget()).unwrap());
        assert!(!by_enumeration(&view, &Instance::single("Q", rel![[2, 1]]), budget()).unwrap());
    }

    #[test]
    fn datalog_certainty_on_gtables() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Edges {(1, 2), (2, x), (x, 4)}: (1, 4) is certainly reachable (through 2 and x),
        // but (1, 3) is not.
        let t = CTable::e_table(
            "E",
            2,
            [
                vec![Term::constant(1), Term::constant(2)],
                vec![Term::constant(2), Term::Var(x)],
                vec![Term::Var(x), Term::constant(4)],
            ],
        )
        .unwrap();
        let q = Query::single(
            "TC",
            QueryDef::Datalog(DatalogProgram::transitive_closure("E", "TC")),
        );
        let view = View::new(q, CDatabase::single(t));
        assert_eq!(strategy(&view), Strategy::NaiveEvaluation);
        assert!(decide(&view, &Instance::single("TC", rel![[1, 4]]), budget()).unwrap());
        assert!(!decide(&view, &Instance::single("TC", rel![[1, 3]]), budget()).unwrap());
        // CERT(*, q): both facts at once.
        assert!(decide(
            &view,
            &Instance::single("TC", rel![[1, 2], [1, 4]]),
            budget()
        )
        .unwrap());
        assert!(!decide(
            &view,
            &Instance::single("TC", rel![[1, 2], [1, 3]]),
            budget()
        )
        .unwrap());
    }

    #[test]
    fn ctable_certainty_uses_the_complement_search() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // (7) is present both when x = 0 and when x ≠ 0 → certain, via two rows.
        let t = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [
                CTuple::with_condition([Term::constant(7)], Conjunction::new([Atom::eq(x, 0)])),
                CTuple::with_condition([Term::constant(7)], Conjunction::new([Atom::neq(x, 0)])),
            ],
        )
        .unwrap();
        let view = View::identity(CDatabase::single(t.clone()));
        assert_eq!(strategy(&view), Strategy::Backtracking);
        assert!(decide(&view, &Instance::single("R", rel![[7]]), budget()).unwrap());
        // Removing one of the rows breaks certainty.
        let partial = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [CTuple::with_condition(
                [Term::constant(7)],
                Conjunction::new([Atom::eq(x, 0)]),
            )],
        )
        .unwrap();
        let view2 = View::identity(CDatabase::single(partial));
        assert!(!decide(&view2, &Instance::single("R", rel![[7]]), budget()).unwrap());
    }

    #[test]
    fn fo_certainty_falls_back_to_enumeration() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // T = {(x)}; q = {1 | ∃a T(a) ∧ a ≠ 5}: not certain (x may be 5).
        let t = CTable::codd("T", 1, [vec![Term::Var(x)]]).unwrap();
        let q = Query::single(
            "Q",
            QueryDef::Fo(FoQuery::boolean(
                1,
                Formula::exists(
                    ["a"],
                    Formula::and([Formula::atom("T", [QTerm::var("a")]), Formula::neq("a", 5)]),
                ),
            )),
        );
        let view = View::new(q, CDatabase::single(t));
        assert_eq!(strategy(&view), Strategy::WorldEnumeration);
        assert!(!decide(&view, &Instance::single("Q", rel![[1]]), budget()).unwrap());

        // With the query ∃a T(a) (no ≠) the fact 1 is certain: every world has some element.
        let q2 = Query::single(
            "Q",
            QueryDef::Fo(FoQuery::boolean(
                1,
                Formula::exists(["a"], Formula::atom("T", [QTerm::var("a")])),
            )),
        );
        let mut g2 = VarGen::new();
        let x2 = g2.fresh();
        let t2 = CTable::codd("T", 1, [vec![Term::Var(x2)]]).unwrap();
        let view2 = View::new(q2, CDatabase::single(t2));
        assert!(decide(&view2, &Instance::single("Q", rel![[1]]), budget()).unwrap());
    }

    #[test]
    fn empty_representation_is_vacuously_certain() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let unsat = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let view = View::identity(CDatabase::single(unsat));
        assert!(decide(&view, &Instance::single("R", rel![[9]]), budget()).unwrap());
    }

    #[test]
    fn naive_and_complement_agree_on_gtables() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::neq(x, y)]),
            [
                vec![Term::Var(x)],
                vec![Term::Var(y)],
                vec![Term::constant(3)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let view = View::identity(db.clone());
        for facts in [
            Instance::single("R", rel![[3]]),
            Instance::single("R", rel![[1]]),
            Instance::single("R", rel![[3], [1]]),
        ] {
            let fast = naive_gtable(&view, &facts).unwrap();
            let slow = complement_search(&db, &facts, budget()).unwrap();
            let slowest = by_enumeration(&view, &facts, budget()).unwrap();
            assert_eq!(fast, slow, "naive vs complement on {facts}");
            assert_eq!(fast, slowest, "naive vs enumeration on {facts}");
        }
    }
}
