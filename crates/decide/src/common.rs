//! Shared infrastructure of the decision procedures: search budgets, strategy reporting and
//! the canonical valuation enumerator behind the generic exponential fallbacks.

use pw_condition::Variable;
use pw_core::{CDatabase, Certificate, Valuation};
use pw_relational::domain::fresh_constants;
use pw_relational::Constant;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which algorithm a dispatching entry point selected.
///
/// The benchmark harness records the strategy next to every measurement so the produced
/// tables show *which* of the paper's algorithms is responsible for each running time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bipartite matching on Codd-tables (Theorem 3.1(1) / 5.1(1)).
    CoddMatching,
    /// Normalise equalities and compare syntactically (Theorem 3.2(1)).
    GTableNormalization,
    /// The c-table-algebra based algorithm for positive existential views of e-tables
    /// (Theorem 3.2(2)).
    PosExistEtable,
    /// Freeze the left-hand side and run membership on the right (Theorem 4.1(2,3)).
    Freeze,
    /// The c-table algebra followed by a bounded search (Theorem 5.2(1)).
    CTableAlgebra,
    /// Naive evaluation treating nulls as fresh constants (Theorem 5.3(1)).
    NaiveEvaluation,
    /// Row-assignment backtracking with constraint propagation (NP/coNP procedures).
    Backtracking,
    /// Canonical valuation enumeration (the Π₂ᵖ / generic fallback of Proposition 2.1).
    WorldEnumeration,
    /// Shard-group decomposition: the database's coupling graph splits into `groups`
    /// variable-disjoint groups, each solved independently (dispatching per group to the
    /// tractable algorithm where one applies) and merged with the problem's combinator.
    /// Condition-coupled databases never report this — they fall back to the joint
    /// search.
    PerShard {
        /// Number of independent coupling groups the request fanned out across.
        groups: usize,
    },
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::PerShard { groups } => return write!(f, "per-shard({groups})"),
            Strategy::CoddMatching => "codd-matching",
            Strategy::GTableNormalization => "g-table-normalization",
            Strategy::PosExistEtable => "pos-exist-e-table",
            Strategy::Freeze => "freeze",
            Strategy::CTableAlgebra => "c-table-algebra",
            Strategy::NaiveEvaluation => "naive-evaluation",
            Strategy::Backtracking => "backtracking",
            Strategy::WorldEnumeration => "world-enumeration",
        };
        write!(f, "{s}")
    }
}

/// The uniform answer of every decision path: what was decided, by which of the paper's
/// algorithms, and (optionally) the evidence.
///
/// Every `decide_with`/`decide_certified` entry point across the five problems returns
/// this one struct — the batched front door ([`crate::batch`]) and the wire layer
/// (`pw-serve`) consume it without knowing which problem produced it, and growing the
/// answer (planner cost, timing) is one field here instead of a workspace-wide
/// positional-tuple rewrite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The verdict, or the [`DecisionError`] that stopped the search: budget or
    /// wall-clock exhaustion, cooperative cancellation, or a worker panic isolated to
    /// this request.
    pub answer: Result<bool, DecisionError>,
    /// Which of the paper's algorithms decided (or attempted) the request.  Filled in
    /// for failures too, so a budget-exceeded search is labelled without re-deriving
    /// the plan.
    pub strategy: Strategy,
    /// Evidence for the answer, when the engine runs with
    /// [`crate::EngineConfig::certify`] on: a value the independent checker `pw_check`
    /// verifies in polynomial time without trusting this crate.  `None` when
    /// certification is off, and in the rare corners where no short certificate exists
    /// (e.g. a budget-exceeded answer).
    pub certificate: Option<Certificate>,
}

impl Decision {
    /// An uncertified decision (certificate [`None`]).
    pub fn of(answer: Result<bool, DecisionError>, strategy: Strategy) -> Self {
        Decision {
            answer,
            strategy,
            certificate: None,
        }
    }

    /// A decision carrying (optional) evidence.
    pub fn certified(
        answer: Result<bool, DecisionError>,
        strategy: Strategy,
        certificate: Option<Certificate>,
    ) -> Self {
        Decision {
            answer,
            strategy,
            certificate,
        }
    }

    /// The definite verdict, if the search produced one.
    pub fn verdict(&self) -> Option<bool> {
        self.answer.as_ref().ok().copied()
    }

    /// Did the search fail (budget, deadline, cancellation, panic)?
    pub fn is_err(&self) -> bool {
        self.answer.is_err()
    }
}

/// A search budget: the maximum number of search nodes / candidate valuations a general
/// procedure may explore before giving up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget(pub u64);

impl Default for Budget {
    fn default() -> Self {
        Budget(50_000_000)
    }
}

impl Budget {
    /// Create a counter that can be decremented during a search.
    pub fn counter(self) -> BudgetCounter {
        BudgetCounter {
            remaining: self.0,
            spent: 0,
            limits: Limits::default(),
        }
    }
}

/// Error returned when a general procedure exhausts its [`Budget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded;

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "search budget exceeded")
    }
}

impl std::error::Error for BudgetExceeded {}

/// Why a decision did not produce a definite answer.
///
/// This is the structured failure taxonomy threaded through every `decide_with` path and
/// [`crate::batch::DecisionOutcome`].  Each variant has a distinct recovery story:
///
/// * [`DecisionError::BudgetExceeded`] — the search exhausted its node [`Budget`].
///   Deterministic for a fixed (database, request, budget), and never memoized, so a
///   retry with more budget ([`crate::batch::Session::decide_all_with_retry`]) is sound.
/// * [`DecisionError::DeadlineExceeded`] — the wall-clock deadline of
///   [`crate::engine::EngineConfig::with_deadline`] passed.  Retrying is the caller's
///   call: the answer was not wrong, just late.
/// * [`DecisionError::Cancelled`] — the request's [`CancelToken`] was cancelled
///   cooperatively.  Not an engine failure at all.
/// * [`DecisionError::WorkerPanicked`] — a search worker panicked (a bug, or an injected
///   fault).  The panic is contained to the one request/group that hit it: sibling
///   requests in a batch complete normally and the engine's caches stay usable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecisionError {
    /// The search exhausted its node budget before finding an answer.
    BudgetExceeded,
    /// The wall-clock deadline passed before the search finished.
    DeadlineExceeded,
    /// The request's [`CancelToken`] was triggered.
    Cancelled,
    /// A worker thread panicked; the payload carries the panic message.  Isolated to
    /// the request/group whose search panicked — siblings are unaffected.
    WorkerPanicked(String),
}

impl fmt::Display for DecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionError::BudgetExceeded => write!(f, "search budget exceeded"),
            DecisionError::DeadlineExceeded => write!(f, "deadline exceeded"),
            DecisionError::Cancelled => write!(f, "request cancelled"),
            DecisionError::WorkerPanicked(msg) => write!(f, "search worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for DecisionError {}

impl From<BudgetExceeded> for DecisionError {
    fn from(_: BudgetExceeded) -> Self {
        DecisionError::BudgetExceeded
    }
}

/// A cooperative cancellation handle: share one per request (via
/// [`crate::engine::EngineConfig::with_cancel`]), call [`CancelToken::cancel`] from any
/// thread, and every search driven under that configuration stops at its next
/// amortized limit check with [`DecisionError::Cancelled`].
///
/// The token rides the same signal path as the engine's internal first-witness
/// cancellation and the wall-clock deadline — one amortized check in the tick loop
/// serves all three.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Signal cancellation.  Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// A deterministic fault-injection plan, attached via
/// [`crate::engine::EngineConfig::with_faults`].  Off by default and zero-cost when
/// absent: the tick hot loop only consults the plan on its amortized (every
/// `LIMIT_CHECK_MASK + 1` ticks) slow path.
///
/// All tick thresholds count *spent* budget units of one search context, so a plan
/// replays identically for a fixed (database, request, budget, thread count = 1);
/// `seed` seeds [`FaultPlan::jitter`] for tests that want varied-but-reproducible
/// trigger points.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Mixed into [`FaultPlan::jitter`]; recorded so a failing test names its seed.
    pub seed: u64,
    /// Panic inside the search once this many budget units are spent (next amortized
    /// check at or after the threshold).  Exercises the panic-isolation boundaries.
    pub panic_at_tick: Option<u64>,
    /// Report [`DecisionError::BudgetExceeded`] once this many units are spent, as if
    /// the pool had run dry.
    pub budget_exhaust_at_tick: Option<u64>,
    /// Report [`DecisionError::DeadlineExceeded`] once this many units are spent, as if
    /// the wall clock had passed the deadline.
    pub deadline_at_tick: Option<u64>,
    /// Panic while deciding the request at this batch position (0-based, pre-scheduling
    /// order).  Exercises the per-request isolation boundary in [`crate::batch`].
    pub panic_on_request: Option<usize>,
    /// Clamp the decision memo to capacity 1, evicting on every insert — an eviction
    /// storm that makes every replay a recompute.
    pub eviction_storm: bool,
    /// Inject one forced steal into the work-stealing scheduler once this many budget
    /// units are spent: the first worker to cross the threshold raids a victim deque
    /// before touching its own, exercising the steal path even on workloads too small
    /// to starve a worker naturally.  Fires once per search.
    pub steal_at_tick: Option<u64>,
    /// Inject one forced subtree re-split once this many budget units are spent: the
    /// next shed poll past the threshold reports thieves waiting, so the running
    /// worker publishes its unexplored sibling subtrees.  Fires once per search.
    pub split_at_tick: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) carrying `seed` for [`FaultPlan::jitter`].
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A deterministic pseudo-random value in `0..span` derived from the seed and
    /// `salt` (splitmix64) — lets a test derive varied trigger ticks from one seed.
    pub fn jitter(&self, salt: u64, span: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(salt)
            .wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) % span.max(1)
    }

    /// The slow-path hook: fired from the amortized limit check with the spent-unit
    /// count.  May panic (by design) or report an injected exhaustion.
    pub(crate) fn at_tick(&self, spent: u64) -> Result<(), DecisionError> {
        if self.panic_at_tick.is_some_and(|t| spent >= t) {
            panic!(
                "fault injection (seed {}): forced panic at tick {spent}",
                self.seed
            );
        }
        if self.budget_exhaust_at_tick.is_some_and(|t| spent >= t) {
            return Err(DecisionError::BudgetExceeded);
        }
        if self.deadline_at_tick.is_some_and(|t| spent >= t) {
            return Err(DecisionError::DeadlineExceeded);
        }
        Ok(())
    }

    /// Has the forced-steal threshold been crossed?  The scheduler latches the first
    /// positive answer so the injection fires exactly once per search.
    pub(crate) fn wants_steal(&self, spent: u64) -> bool {
        self.steal_at_tick.is_some_and(|t| spent >= t)
    }

    /// Has the forced-split threshold been crossed?  Latched by the scheduler exactly
    /// like [`FaultPlan::wants_steal`].
    pub(crate) fn wants_split(&self, spent: u64) -> bool {
        self.split_at_tick.is_some_and(|t| spent >= t)
    }
}

/// The amortization mask of the slow limit check: deadline / external cancellation /
/// fault hooks run once every `LIMIT_CHECK_MASK + 1` spent budget units, so the tick
/// hot loop stays a decrement plus one branch.
pub(crate) const LIMIT_CHECK_MASK: u64 = 1023;

/// The slow-path limits a search runs under: wall-clock deadline, external
/// cancellation, and the fault-injection plan.  All optional; the empty value is the
/// default and costs one `Option` test per amortized check.
#[derive(Clone, Debug, Default)]
pub(crate) struct Limits {
    pub(crate) deadline: Option<Instant>,
    pub(crate) cancel: Option<Arc<CancelToken>>,
    pub(crate) faults: Option<Arc<FaultPlan>>,
}

impl Limits {
    /// Any limit to check at all?  When false the amortized slow path is skipped
    /// entirely (the zero-cost-when-disabled guarantee of [`FaultPlan`]).
    pub(crate) fn is_empty(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.faults.is_none()
    }

    /// The amortized slow check, called every [`LIMIT_CHECK_MASK`]` + 1` ticks with the
    /// number of units spent so far.
    pub(crate) fn check(&self, spent: u64) -> Result<(), DecisionError> {
        if let Some(faults) = &self.faults {
            faults.at_tick(spent)?;
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(DecisionError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(DecisionError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// A mutable countdown handed to recursive searches, optionally carrying the same
/// slow-path `Limits` as the parallel engine's shared budget — so the sequential
/// backtracking paths honor deadlines, cancellation and fault plans too.
#[derive(Clone, Debug)]
pub struct BudgetCounter {
    remaining: u64,
    spent: u64,
    limits: Limits,
}

impl BudgetCounter {
    /// Charge one unit; errors when the budget is exhausted, the deadline has passed,
    /// or the counter's cancel token fired (deadline/cancel are polled on an amortized
    /// slow path every `LIMIT_CHECK_MASK + 1` units).
    pub fn tick(&mut self) -> Result<(), DecisionError> {
        if self.remaining == 0 {
            return Err(DecisionError::BudgetExceeded);
        }
        self.remaining -= 1;
        self.spent += 1;
        if self.spent & LIMIT_CHECK_MASK == 0 && !self.limits.is_empty() {
            self.limits.check(self.spent)?;
        }
        Ok(())
    }

    /// Remaining units.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Write back the pool after a search ran against an engine-owned shared budget
    /// seeded from this counter (see the wrappers in [`crate::search`]).
    pub(crate) fn set_remaining(&mut self, remaining: u64) {
        self.remaining = remaining;
    }

    /// Attach slow-path limits (used by [`crate::engine::EngineConfig::counter`]).
    pub(crate) fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// The counter's limits, for seeding an engine context that continues this search
    /// (see [`crate::search`]'s wrappers).
    pub(crate) fn limits(&self) -> &Limits {
        &self.limits
    }
}

/// Enumerate the *canonical* valuations of `vars` into Δ ∪ Δ′ and feed each to `visit`
/// until it returns `Some(r)`.
///
/// Canonicity: fresh (Δ′) constants are introduced in a fixed order — a variable may be
/// mapped to the i-th fresh constant only if fresh constants `0..i` are already in use by
/// earlier variables.  Every valuation into Δ ∪ Δ′ is the composition of a canonical one
/// with a permutation of Δ′; since the decision problems below only compare query outputs
/// against facts over Δ (and QPTIME queries are generic), restricting to canonical
/// valuations is sound and complete, exactly as in the proof of Proposition 2.1.
pub fn for_each_canonical_valuation<R>(
    vars: &[Variable],
    delta: &BTreeSet<Constant>,
    budget: &mut BudgetCounter,
    mut visit: impl FnMut(&Valuation) -> Option<R>,
) -> Result<Option<R>, DecisionError> {
    let fresh = fresh_constants(delta, vars.len());
    let delta: Vec<Constant> = delta.iter().cloned().collect();
    let mut assignment: Vec<Constant> = Vec::with_capacity(vars.len());

    fn rec<R>(
        vars: &[Variable],
        delta: &[Constant],
        fresh: &[Constant],
        assignment: &mut Vec<Constant>,
        fresh_used: usize,
        budget: &mut BudgetCounter,
        visit: &mut impl FnMut(&Valuation) -> Option<R>,
    ) -> Result<Option<R>, DecisionError> {
        if assignment.len() == vars.len() {
            budget.tick()?;
            let valuation =
                Valuation::from_pairs(vars.iter().copied().zip(assignment.iter().cloned()));
            return Ok(visit(&valuation));
        }
        // Known constants first …
        for c in delta {
            assignment.push(c.clone());
            let r = rec(vars, delta, fresh, assignment, fresh_used, budget, visit)?;
            assignment.pop();
            if r.is_some() {
                return Ok(r);
            }
        }
        // … then previously used fresh constants, and at most one new fresh constant.
        let fresh_limit = (fresh_used + 1).min(fresh.len());
        for (i, c) in fresh.iter().enumerate().take(fresh_limit) {
            assignment.push(c.clone());
            let new_used = fresh_used.max(i + 1);
            let r = rec(vars, delta, fresh, assignment, new_used, budget, visit)?;
            assignment.pop();
            if r.is_some() {
                return Ok(r);
            }
        }
        Ok(None)
    }

    rec(vars, &delta, &fresh, &mut assignment, 0, budget, &mut visit)
}

/// The evaluation domain Δ for a database plus extra constants (those of the instance,
/// fact set or query the caller is comparing against).
pub fn evaluation_delta(
    db: &CDatabase,
    extra: impl IntoIterator<Item = Constant>,
) -> BTreeSet<Constant> {
    let mut delta = db.constants();
    delta.extend(extra);
    delta
}

// Database-level normalisation and the freeze construction moved to `pw-core` so the
// engine-independent certificate checker (`pw_check`) can replay the freeze reduction
// without depending on this crate; engine-side callers keep importing them from here.
pub use pw_core::{freeze_database, normalize_database};

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::VarGen;

    #[test]
    fn canonical_enumeration_counts() {
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..3).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = [Constant::int(7)].into();
        let mut counter = Budget(1_000_000).counter();
        let mut count = 0usize;
        for_each_canonical_valuation(&vars, &delta, &mut counter, |_| {
            count += 1;
            None::<()>
        })
        .unwrap();
        // With |Δ| = 1 the canonical valuations of 3 variables are the set partitions
        // refined by "equals 7 or not": v1 ∈ {7, f0}; etc.  Explicitly: 1·… =
        // choices: (1+1)·(1+used+1)… — just assert the exact value computed by hand:
        // v0: {7, f0} = 2; if v0=7 then v1: {7, f0}=2 else v1: {7, f0, f1}=3 …
        // Total = 2·(2·(2..3)) = enumerate: 7,7,{7,f0}=2; 7,f0,{7,f0,f1}=3; f0,7,{7,f0,f1}=3;
        // f0,f0,{7,f0,f1}=3; f0,f1,{7,f0,f1,f2}=4  → 2+3+3+3+4 = 15.
        assert_eq!(count, 15);
    }

    #[test]
    fn early_exit_short_circuits() {
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..2).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = [Constant::int(1), Constant::int(2)].into();
        let mut counter = Budget(1000).counter();
        let mut seen = 0usize;
        let result = for_each_canonical_valuation(&vars, &delta, &mut counter, |v| {
            seen += 1;
            (v.get(vars[0]) == Some(Constant::int(2))).then_some("found")
        })
        .unwrap();
        assert_eq!(result, Some("found"));
        assert!(seen < 12, "stopped before exhausting all valuations");
    }

    #[test]
    fn budget_is_enforced() {
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..6).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = (0..6).map(Constant::int).collect();
        let mut counter = Budget(100).counter();
        let err = for_each_canonical_valuation(&vars, &delta, &mut counter, |_| None::<()>);
        assert_eq!(err, Err(DecisionError::BudgetExceeded));
        assert_eq!(counter.remaining(), 0);
    }

    #[test]
    fn strategy_display_names_are_stable() {
        assert_eq!(Strategy::CoddMatching.to_string(), "codd-matching");
        assert_eq!(Strategy::WorldEnumeration.to_string(), "world-enumeration");
        assert_eq!(Budget::default().0, 50_000_000);
    }
}
