//! Shared infrastructure of the decision procedures: search budgets, strategy reporting and
//! the canonical valuation enumerator behind the generic exponential fallbacks.

use pw_condition::Variable;
use pw_core::{CDatabase, Valuation};
use pw_relational::domain::fresh_constants;
use pw_relational::Constant;
use std::collections::BTreeSet;
use std::fmt;

/// Which algorithm a dispatching entry point selected.
///
/// The benchmark harness records the strategy next to every measurement so the produced
/// tables show *which* of the paper's algorithms is responsible for each running time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bipartite matching on Codd-tables (Theorem 3.1(1) / 5.1(1)).
    CoddMatching,
    /// Normalise equalities and compare syntactically (Theorem 3.2(1)).
    GTableNormalization,
    /// The c-table-algebra based algorithm for positive existential views of e-tables
    /// (Theorem 3.2(2)).
    PosExistEtable,
    /// Freeze the left-hand side and run membership on the right (Theorem 4.1(2,3)).
    Freeze,
    /// The c-table algebra followed by a bounded search (Theorem 5.2(1)).
    CTableAlgebra,
    /// Naive evaluation treating nulls as fresh constants (Theorem 5.3(1)).
    NaiveEvaluation,
    /// Row-assignment backtracking with constraint propagation (NP/coNP procedures).
    Backtracking,
    /// Canonical valuation enumeration (the Π₂ᵖ / generic fallback of Proposition 2.1).
    WorldEnumeration,
    /// Shard-group decomposition: the database's coupling graph splits into `groups`
    /// variable-disjoint groups, each solved independently (dispatching per group to the
    /// tractable algorithm where one applies) and merged with the problem's combinator.
    /// Condition-coupled databases never report this — they fall back to the joint
    /// search.
    PerShard {
        /// Number of independent coupling groups the request fanned out across.
        groups: usize,
    },
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::PerShard { groups } => return write!(f, "per-shard({groups})"),
            Strategy::CoddMatching => "codd-matching",
            Strategy::GTableNormalization => "g-table-normalization",
            Strategy::PosExistEtable => "pos-exist-e-table",
            Strategy::Freeze => "freeze",
            Strategy::CTableAlgebra => "c-table-algebra",
            Strategy::NaiveEvaluation => "naive-evaluation",
            Strategy::Backtracking => "backtracking",
            Strategy::WorldEnumeration => "world-enumeration",
        };
        write!(f, "{s}")
    }
}

/// A search budget: the maximum number of search nodes / candidate valuations a general
/// procedure may explore before giving up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget(pub u64);

impl Default for Budget {
    fn default() -> Self {
        Budget(50_000_000)
    }
}

impl Budget {
    /// Create a counter that can be decremented during a search.
    pub fn counter(self) -> BudgetCounter {
        BudgetCounter { remaining: self.0 }
    }
}

/// Error returned when a general procedure exhausts its [`Budget`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded;

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "search budget exceeded")
    }
}

impl std::error::Error for BudgetExceeded {}

/// A mutable countdown handed to recursive searches.
#[derive(Clone, Debug)]
pub struct BudgetCounter {
    remaining: u64,
}

impl BudgetCounter {
    /// Charge one unit; errors when the budget is exhausted.
    pub fn tick(&mut self) -> Result<(), BudgetExceeded> {
        if self.remaining == 0 {
            return Err(BudgetExceeded);
        }
        self.remaining -= 1;
        Ok(())
    }

    /// Remaining units.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Write back the pool after a search ran against an engine-owned shared budget
    /// seeded from this counter (see the wrappers in [`crate::search`]).
    pub(crate) fn set_remaining(&mut self, remaining: u64) {
        self.remaining = remaining;
    }
}

/// Enumerate the *canonical* valuations of `vars` into Δ ∪ Δ′ and feed each to `visit`
/// until it returns `Some(r)`.
///
/// Canonicity: fresh (Δ′) constants are introduced in a fixed order — a variable may be
/// mapped to the i-th fresh constant only if fresh constants `0..i` are already in use by
/// earlier variables.  Every valuation into Δ ∪ Δ′ is the composition of a canonical one
/// with a permutation of Δ′; since the decision problems below only compare query outputs
/// against facts over Δ (and QPTIME queries are generic), restricting to canonical
/// valuations is sound and complete, exactly as in the proof of Proposition 2.1.
pub fn for_each_canonical_valuation<R>(
    vars: &[Variable],
    delta: &BTreeSet<Constant>,
    budget: &mut BudgetCounter,
    mut visit: impl FnMut(&Valuation) -> Option<R>,
) -> Result<Option<R>, BudgetExceeded> {
    let fresh = fresh_constants(delta, vars.len());
    let delta: Vec<Constant> = delta.iter().cloned().collect();
    let mut assignment: Vec<Constant> = Vec::with_capacity(vars.len());

    fn rec<R>(
        vars: &[Variable],
        delta: &[Constant],
        fresh: &[Constant],
        assignment: &mut Vec<Constant>,
        fresh_used: usize,
        budget: &mut BudgetCounter,
        visit: &mut impl FnMut(&Valuation) -> Option<R>,
    ) -> Result<Option<R>, BudgetExceeded> {
        if assignment.len() == vars.len() {
            budget.tick()?;
            let valuation =
                Valuation::from_pairs(vars.iter().copied().zip(assignment.iter().cloned()));
            return Ok(visit(&valuation));
        }
        // Known constants first …
        for c in delta {
            assignment.push(c.clone());
            let r = rec(vars, delta, fresh, assignment, fresh_used, budget, visit)?;
            assignment.pop();
            if r.is_some() {
                return Ok(r);
            }
        }
        // … then previously used fresh constants, and at most one new fresh constant.
        let fresh_limit = (fresh_used + 1).min(fresh.len());
        for (i, c) in fresh.iter().enumerate().take(fresh_limit) {
            assignment.push(c.clone());
            let new_used = fresh_used.max(i + 1);
            let r = rec(vars, delta, fresh, assignment, new_used, budget, visit)?;
            assignment.pop();
            if r.is_some() {
                return Ok(r);
            }
        }
        Ok(None)
    }

    rec(vars, &delta, &fresh, &mut assignment, 0, budget, &mut visit)
}

/// The evaluation domain Δ for a database plus extra constants (those of the instance,
/// fact set or query the caller is comparing against).
pub fn evaluation_delta(
    db: &CDatabase,
    extra: impl IntoIterator<Item = Constant>,
) -> BTreeSet<Constant> {
    let mut delta = db.constants();
    delta.extend(extra);
    delta
}

// Database-level normalisation and the freeze construction moved to `pw-core` so the
// engine-independent certificate checker (`pw_check`) can replay the freeze reduction
// without depending on this crate; engine-side callers keep importing them from here.
pub use pw_core::{freeze_database, normalize_database};

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::VarGen;

    #[test]
    fn canonical_enumeration_counts() {
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..3).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = [Constant::int(7)].into();
        let mut counter = Budget(1_000_000).counter();
        let mut count = 0usize;
        for_each_canonical_valuation(&vars, &delta, &mut counter, |_| {
            count += 1;
            None::<()>
        })
        .unwrap();
        // With |Δ| = 1 the canonical valuations of 3 variables are the set partitions
        // refined by "equals 7 or not": v1 ∈ {7, f0}; etc.  Explicitly: 1·… =
        // choices: (1+1)·(1+used+1)… — just assert the exact value computed by hand:
        // v0: {7, f0} = 2; if v0=7 then v1: {7, f0}=2 else v1: {7, f0, f1}=3 …
        // Total = 2·(2·(2..3)) = enumerate: 7,7,{7,f0}=2; 7,f0,{7,f0,f1}=3; f0,7,{7,f0,f1}=3;
        // f0,f0,{7,f0,f1}=3; f0,f1,{7,f0,f1,f2}=4  → 2+3+3+3+4 = 15.
        assert_eq!(count, 15);
    }

    #[test]
    fn early_exit_short_circuits() {
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..2).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = [Constant::int(1), Constant::int(2)].into();
        let mut counter = Budget(1000).counter();
        let mut seen = 0usize;
        let result = for_each_canonical_valuation(&vars, &delta, &mut counter, |v| {
            seen += 1;
            (v.get(vars[0]) == Some(Constant::int(2))).then_some("found")
        })
        .unwrap();
        assert_eq!(result, Some("found"));
        assert!(seen < 12, "stopped before exhausting all valuations");
    }

    #[test]
    fn budget_is_enforced() {
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..6).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = (0..6).map(Constant::int).collect();
        let mut counter = Budget(100).counter();
        let err = for_each_canonical_valuation(&vars, &delta, &mut counter, |_| None::<()>);
        assert_eq!(err, Err(BudgetExceeded));
        assert_eq!(counter.remaining(), 0);
    }

    #[test]
    fn strategy_display_names_are_stable() {
        assert_eq!(Strategy::CoddMatching.to_string(), "codd-matching");
        assert_eq!(Strategy::WorldEnumeration.to_string(), "world-enumeration");
        assert_eq!(Budget::default().0, 50_000_000);
    }
}
