//! Witness extraction for certified decides: sequential mirrors of the engine's
//! constraint searches that, instead of answering `true`, return the **total satisfying
//! valuation** the accepting leaf corresponds to — the raw material of a
//! [`pw_core::Certificate`].
//!
//! Every extractor here is a complete search over the same branch structure as its
//! uncertified counterpart (`membership::backtracking`, the engine's cover / missing /
//! escape searches, the Codd matching algorithms), so `Some(binding)` and the
//! uncertified `true` coincide by construction; the problem modules assert nothing —
//! the property suite cross-checks certified against uncertified verdicts, and the
//! independent checker (`pw_check`) re-validates every extracted valuation.
//!
//! Extraction convention: at an accepting leaf the constraint store holds everything
//! the branch decided (row↦fact equalities, falsified condition atoms, the global
//! conditions), and [`pw_condition::ConstraintSet::complete_valuation`] extends it to a
//! *total* valuation of the database's variables — forced variables take their forced
//! value, free variables take pairwise-distinct fresh constants outside the avoid set
//! (the database's constants plus the request's active domain, so a fresh value can
//! never collide with anything the claim compares against).  Bindings come back as
//! `(Variable, Sym)` pairs in the database's symbol context (the handle-threading
//! rule), merged across shard groups by plain union — groups are variable-disjoint.

use crate::common::{BudgetCounter, DecisionError};
use crate::engine::{intern_fact, Engine, MemoOp};
use pw_condition::{Atom, Conjunction, ConstraintSet, Term, Variable};
use pw_core::{CDatabase, Certificate, Valuation};
use pw_relational::{Constant, Instance, Sym};
use pw_solvers::matching::{maximum_matching, BipartiteGraph};
use std::collections::BTreeSet;

/// A total assignment of a database's variables, in that database's symbol context.
pub(crate) type Binding = Vec<(Variable, Sym)>;

/// Turn a binding into the [`Valuation`] a certificate carries.
pub(crate) fn valuation(pairs: Binding) -> Valuation {
    Valuation::from_pairs(pairs)
}

/// The constants a fresh completion must avoid: everything the claim could compare
/// against — the database's own constants (terms *and* conditions) plus the request's
/// active domain.
pub(crate) fn avoid_set(db: &CDatabase, request: &Instance) -> BTreeSet<Constant> {
    let mut avoid = db.constants();
    avoid.extend(request.active_domain());
    avoid
}

/// All global conditions asserted; `None` when they are jointly unsatisfiable
/// (`rep(db) = ∅`).  Local equivalent of `Engine::base_store` (no cache — certified
/// extraction runs once per verdict).
fn base_store(db: &CDatabase) -> Option<ConstraintSet> {
    let mut store = ConstraintSet::new();
    for table in db.tables() {
        if !store.assert_conjunction(table.global_condition()) {
            return None;
        }
    }
    Some(store)
}

/// Extend the store to a total valuation of `db`'s variables, re-interned through the
/// database's own handle.
fn complete(
    store: &mut ConstraintSet,
    db: &CDatabase,
    avoid: &BTreeSet<Constant>,
) -> Option<Binding> {
    let pairs = store.complete_valuation(db.variables(), avoid)?;
    Some(pairs.into_iter().map(|(v, c)| (v, db.intern(&c))).collect())
}

/// A generic satisfying valuation of the database — any world of `rep(db)`, with every
/// unforced variable frozen to a distinct fresh constant.  `None` iff the globals are
/// unsatisfiable.
pub(crate) fn base_completion(db: &CDatabase, avoid: &BTreeSet<Constant>) -> Option<Binding> {
    let mut store = base_store(db)?;
    complete(&mut store, db, avoid)
}

/// Assign distinct fresh constants (outside `avoid`) to every database variable the
/// binding leaves unassigned, so the valuation is total and [`Valuation::world_of`]
/// succeeds.
pub(crate) fn fill_unassigned(
    db: &CDatabase,
    mut pairs: Binding,
    avoid: &BTreeSet<Constant>,
) -> Binding {
    let assigned: BTreeSet<Variable> = pairs.iter().map(|(v, _)| *v).collect();
    let missing: Vec<Variable> = db
        .variables()
        .into_iter()
        .filter(|v| !assigned.contains(v))
        .collect();
    let fresh = pw_relational::domain::fresh_constants(avoid, missing.len());
    for (v, c) in missing.into_iter().zip(fresh) {
        pairs.push((v, db.intern(&c)));
    }
    pairs
}

/// The schema gate every search applies first: populated relations must exist with the
/// right arity.
fn schema_compatible(db: &CDatabase, instance: &Instance) -> bool {
    for (name, rel) in instance.iter() {
        if rel.is_empty() {
            continue;
        }
        match db.table(name) {
            Some(t) if t.arity() == rel.arity() => {}
            _ => return false,
        }
    }
    true
}

/// Local copy of the engine's row-production assertion: the row's condition holds and
/// its terms equal the (interned) fact position-wise.
fn assert_row_produces(
    store: &mut ConstraintSet,
    row_terms: &[Term],
    cond: &Conjunction,
    fact: &[Sym],
) -> bool {
    if !store.assert_conjunction(cond) {
        return false;
    }
    for (&term, &value) in row_terms.iter().zip(fact.iter()) {
        if !store.assert_eq(term, Term::Const(value)) {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------------------
// Membership: σ with σ(db) = instance (mirror of `membership::backtracking`).
// ---------------------------------------------------------------------------------------

/// A witness valuation for `instance ∈ rep(db)`, or `None` when there is none — the
/// capture-as-decider mirror of [`crate::membership::backtracking`]: every row is mapped
/// onto a fact (condition + equalities asserted) or declared absent (one condition atom
/// falsified), all facts covered.  At an accepting leaf the completed store yields a
/// valuation whose world is *exactly* `instance`: mapped rows produce their facts,
/// absent rows keep a falsified atom, and free variables take fresh constants that
/// cannot resurrect an absent row or leak a new fact into the comparison domain.
pub(crate) fn member_witness(
    db: &CDatabase,
    instance: &Instance,
    counter: &mut BudgetCounter,
) -> Result<Option<Binding>, DecisionError> {
    if !schema_compatible(db, instance) {
        return Ok(None);
    }
    let Some(mut store) = base_store(db) else {
        return Ok(None);
    };

    struct RowRef<'a> {
        table: &'a pw_core::CTable,
        row_idx: usize,
        t_idx: usize,
    }
    let mut rows: Vec<RowRef<'_>> = Vec::new();
    for (t_idx, table) in db.tables().iter().enumerate() {
        for row_idx in 0..table.len() {
            rows.push(RowRef {
                table,
                row_idx,
                t_idx,
            });
        }
    }
    let mut fact_lists: Vec<Vec<Vec<Sym>>> = Vec::new();
    for table in db.tables() {
        let rel = instance.relation_or_empty(table.name(), table.arity());
        fact_lists.push(rel.iter().map(|f| intern_fact(db, f)).collect());
    }
    let total_facts: usize = fact_lists.iter().map(Vec::len).sum();
    let mut coverage: Vec<Vec<usize>> = fact_lists
        .iter()
        .map(|facts| vec![0usize; facts.len()])
        .collect();
    let avoid = avoid_set(db, instance);

    struct Shape<'a> {
        db: &'a CDatabase,
        rows: Vec<RowRef<'a>>,
        fact_lists: Vec<Vec<Vec<Sym>>>,
        total_facts: usize,
        avoid: BTreeSet<Constant>,
    }

    fn search(
        shape: &Shape<'_>,
        coverage: &mut Vec<Vec<usize>>,
        covered_count: usize,
        depth: usize,
        store: &mut ConstraintSet,
        counter: &mut BudgetCounter,
    ) -> Result<Option<Binding>, DecisionError> {
        counter.tick()?;
        if depth == shape.rows.len() {
            if covered_count == shape.total_facts {
                return Ok(complete(store, shape.db, &shape.avoid));
            }
            return Ok(None);
        }
        if shape.total_facts - covered_count > shape.rows.len() - depth {
            return Ok(None);
        }
        let row_ref = &shape.rows[depth];
        let row = &row_ref.table.tuples()[row_ref.row_idx];
        let t_idx = row_ref.t_idx;

        // Option 1: map the row onto a fact of its relation.
        for f_idx in 0..shape.fact_lists[t_idx].len() {
            let fact = &shape.fact_lists[t_idx][f_idx];
            let cp = store.checkpoint();
            if assert_row_produces(store, &row.terms, &row.condition, fact) {
                coverage[t_idx][f_idx] += 1;
                let newly = coverage[t_idx][f_idx] == 1;
                let result = search(
                    shape,
                    coverage,
                    covered_count + usize::from(newly),
                    depth + 1,
                    store,
                    counter,
                );
                coverage[t_idx][f_idx] -= 1;
                store.rollback(cp);
                if let Some(w) = result? {
                    return Ok(Some(w));
                }
            } else {
                store.rollback(cp);
            }
        }

        // Option 2: the row is absent — one atom of its condition falsified.
        for &atom in row.condition.atoms() {
            let cp = store.checkpoint();
            let negated_ok = match atom {
                Atom::Eq(a, b) => store.assert_neq(a, b),
                Atom::Neq(a, b) => store.assert_eq(a, b),
            };
            if negated_ok {
                let result = search(shape, coverage, covered_count, depth + 1, store, counter);
                store.rollback(cp);
                if let Some(w) = result? {
                    return Ok(Some(w));
                }
            } else {
                store.rollback(cp);
            }
        }
        Ok(None)
    }

    let shape = Shape {
        db,
        rows,
        fact_lists,
        total_facts,
        avoid,
    };
    search(&shape, &mut coverage, 0, 0, &mut store, counter)
}

// ---------------------------------------------------------------------------------------
// Covering (possibility): σ with facts ⊆ σ(db) (mirror of the engine's CoverSearch).
// ---------------------------------------------------------------------------------------

/// A valuation under which every fact of `facts` is produced by a distinct row of its
/// relation — the capture mirror of `Engine::exists_world_covering`.  Rows the search
/// leaves free may produce extra facts under the completion; harmless, possibility only
/// needs `facts ⊆ world`.
pub(crate) fn cover_witness(
    db: &CDatabase,
    facts: &Instance,
    counter: &mut BudgetCounter,
) -> Result<Option<Binding>, DecisionError> {
    if !schema_compatible(db, facts) {
        return Ok(None);
    }
    let Some(mut store) = base_store(db) else {
        return Ok(None);
    };
    let mut work: Vec<(usize, Vec<Sym>)> = Vec::new();
    for (name, rel) in facts.iter() {
        if let Some(pos) = db.table_position(name) {
            for fact in rel.iter() {
                work.push((pos, intern_fact(db, fact)));
            }
        }
    }
    let avoid = avoid_set(db, facts);
    let mut used: Vec<(usize, usize)> = Vec::new();

    fn rec(
        db: &CDatabase,
        work: &[(usize, Vec<Sym>)],
        depth: usize,
        used: &mut Vec<(usize, usize)>,
        store: &mut ConstraintSet,
        counter: &mut BudgetCounter,
        avoid: &BTreeSet<Constant>,
    ) -> Result<Option<Binding>, DecisionError> {
        counter.tick()?;
        if depth == work.len() {
            return Ok(complete(store, db, avoid));
        }
        let (t_pos, fact) = &work[depth];
        let table = &db.tables()[*t_pos];
        for row_idx in 0..table.len() {
            if used.contains(&(*t_pos, row_idx)) {
                continue;
            }
            let cp = store.checkpoint();
            let row = &table.tuples()[row_idx];
            if assert_row_produces(store, &row.terms, &row.condition, fact) {
                used.push((*t_pos, row_idx));
                let result = rec(db, work, depth + 1, used, store, counter, avoid);
                used.pop();
                store.rollback(cp);
                if let Some(w) = result? {
                    return Ok(Some(w));
                }
            } else {
                store.rollback(cp);
            }
        }
        Ok(None)
    }

    rec(db, &work, 0, &mut used, &mut store, counter, &avoid)
}

// ---------------------------------------------------------------------------------------
// Missing fact (certainty / uniqueness complement): σ whose world misses some fact.
// ---------------------------------------------------------------------------------------

/// A valuation under which **some** fact of `facts` is produced by *no* row of its
/// relation — the capture mirror of `Engine::exists_world_missing_any_fact`.  A fact of
/// a relation the database does not have is missing from every world; callers guarantee
/// the representation is non-empty when they ask (the uncertified deciders handle the
/// empty rep before reaching this search), so the base completion is the witness there.
pub(crate) fn missing_witness(
    db: &CDatabase,
    facts: &Instance,
    counter: &mut BudgetCounter,
) -> Result<Option<Binding>, DecisionError> {
    let avoid = avoid_set(db, facts);
    let mut work: Vec<(usize, Vec<Sym>)> = Vec::new();
    for (name, rel) in facts.iter() {
        for fact in rel.iter() {
            match db.table(name) {
                Some(t) if t.arity() == fact.arity() => work.push((
                    db.table_position(name).expect("table exists"),
                    intern_fact(db, fact),
                )),
                _ => return Ok(base_completion(db, &avoid)),
            }
        }
    }
    if work.is_empty() {
        return Ok(None);
    }
    let Some(base) = base_store(db) else {
        return Ok(None);
    };

    fn rec(
        db: &CDatabase,
        t_pos: usize,
        fact: &[Sym],
        row_idx: usize,
        store: &mut ConstraintSet,
        counter: &mut BudgetCounter,
        avoid: &BTreeSet<Constant>,
    ) -> Result<Option<Binding>, DecisionError> {
        counter.tick()?;
        let table = &db.tables()[t_pos];
        if row_idx == table.len() {
            return Ok(complete(store, db, avoid));
        }
        let row = &table.tuples()[row_idx];
        // Per row, a reason it does not produce the fact: one branch per position
        // (differs there), then one per condition atom (falsified).
        for k in 0..row.terms.len() + row.condition.len() {
            let cp = store.checkpoint();
            let ok = if k < row.terms.len() {
                store.assert_neq(row.terms[k], Term::Const(fact[k]))
            } else {
                match row.condition.atoms()[k - row.terms.len()] {
                    Atom::Eq(a, b) => store.assert_neq(a, b),
                    Atom::Neq(a, b) => store.assert_eq(a, b),
                }
            };
            if ok {
                let result = rec(db, t_pos, fact, row_idx + 1, store, counter, avoid);
                store.rollback(cp);
                if let Some(w) = result? {
                    return Ok(Some(w));
                }
            } else {
                store.rollback(cp);
            }
        }
        Ok(None)
    }

    for (t_pos, fact) in &work {
        let mut store = base.clone();
        if let Some(w) = rec(db, *t_pos, fact, 0, &mut store, counter, &avoid)? {
            return Ok(Some(w));
        }
    }
    Ok(None)
}

// ---------------------------------------------------------------------------------------
// Escaping row (uniqueness complement): σ whose world has a fact outside the instance.
// ---------------------------------------------------------------------------------------

/// A valuation under which some row is present (its condition holds) and produces a
/// fact **outside** `instance` — the capture mirror of
/// `Engine::exists_world_with_fact_outside`: the row differs from every instance fact
/// of its relation in at least one position.
pub(crate) fn escape_witness(
    db: &CDatabase,
    instance: &Instance,
    counter: &mut BudgetCounter,
) -> Result<Option<Binding>, DecisionError> {
    let Some(base) = base_store(db) else {
        return Ok(None);
    };
    let avoid = avoid_set(db, instance);

    fn rec(
        db: &CDatabase,
        terms: &[Term],
        facts: &[Vec<Sym>],
        fact_idx: usize,
        store: &mut ConstraintSet,
        counter: &mut BudgetCounter,
        avoid: &BTreeSet<Constant>,
    ) -> Result<Option<Binding>, DecisionError> {
        counter.tick()?;
        if fact_idx == facts.len() {
            return Ok(complete(store, db, avoid));
        }
        let fact = &facts[fact_idx];
        for k in 0..terms.len() {
            let cp = store.checkpoint();
            if store.assert_neq(terms[k], Term::Const(fact[k])) {
                let result = rec(db, terms, facts, fact_idx + 1, store, counter, avoid);
                store.rollback(cp);
                if let Some(w) = result? {
                    return Ok(Some(w));
                }
            } else {
                store.rollback(cp);
            }
        }
        Ok(None)
    }

    for table in db.tables() {
        let rel = instance.relation_or_empty(table.name(), table.arity());
        let facts: Vec<Vec<Sym>> = rel.iter().map(|f| intern_fact(db, f)).collect();
        for row in table.tuples() {
            let mut store = base.clone();
            if !store.assert_conjunction(&row.condition) {
                continue;
            }
            if let Some(w) = rec(db, &row.terms, &facts, 0, &mut store, counter, &avoid)? {
                return Ok(Some(w));
            }
        }
    }
    Ok(None)
}

// ---------------------------------------------------------------------------------------
// Codd matching: witnesses for the polynomial membership / possibility algorithms.
// ---------------------------------------------------------------------------------------

/// Can some valuation map this (Codd) row onto the (interned) fact?
fn row_unifies(terms: &[Term], fact: &[Sym]) -> bool {
    terms.len() == fact.len()
        && terms.iter().zip(fact.iter()).all(|(t, c)| match t {
            Term::Const(tc) => tc == c,
            Term::Var(_) => true,
        })
}

/// A membership witness from the matching algorithm (Theorem 3.1(1)): matched rows take
/// their fact's values; an unmatched row is folded onto *some* fact it unifies with
/// (one exists — the algorithm rejects otherwise), so its production stays inside the
/// instance.  Codd variables occur once each, so the per-position assignments never
/// conflict and jointly cover the database's variables.
pub(crate) fn codd_member_witness(db: &CDatabase, instance: &Instance) -> Option<Binding> {
    if !schema_compatible(db, instance) {
        return None;
    }
    let mut pairs: Binding = Vec::new();
    for table in db.tables() {
        let rel = instance.relation_or_empty(table.name(), table.arity());
        let facts: Vec<Vec<Sym>> = rel.iter().map(|f| intern_fact(db, f)).collect();
        let mut graph = BipartiteGraph::new(facts.len(), table.len());
        let mut first_unifier: Vec<Option<usize>> = vec![None; table.len()];
        for (j, row) in table.tuples().iter().enumerate() {
            for (i, fact) in facts.iter().enumerate() {
                if row_unifies(&row.terms, fact) {
                    graph.add_edge(i, j);
                    if first_unifier[j].is_none() {
                        first_unifier[j] = Some(i);
                    }
                }
            }
            first_unifier[j]?;
        }
        if table.is_empty() && !facts.is_empty() {
            return None;
        }
        let matching = maximum_matching(&graph);
        if matching.cardinality() != facts.len() {
            return None;
        }
        for (j, row) in table.tuples().iter().enumerate() {
            let i = matching.pair_right[j]
                .or(first_unifier[j])
                .expect("every row unifies with some fact");
            let fact = &facts[i];
            for (k, term) in row.terms.iter().enumerate() {
                if let Term::Var(v) = term {
                    pairs.push((*v, fact[k]));
                }
            }
        }
    }
    Some(fill_unassigned(db, pairs, &avoid_set(db, instance)))
}

/// A possibility witness from the matching algorithm (Theorem 5.1(1)): matched rows take
/// their fact's values, every other variable is frozen to a distinct fresh constant —
/// the extra facts those free rows produce are outside the comparison and possibility
/// only needs `facts ⊆ world`.
pub(crate) fn codd_cover_witness(db: &CDatabase, facts: &Instance) -> Option<Binding> {
    let mut pairs: Binding = Vec::new();
    for (name, rel) in facts.iter() {
        if rel.is_empty() {
            continue;
        }
        let table = match db.table(name) {
            Some(t) if t.arity() == rel.arity() => t,
            _ => return None,
        };
        let interned: Vec<Vec<Sym>> = rel.iter().map(|f| intern_fact(db, f)).collect();
        let mut graph = BipartiteGraph::new(interned.len(), table.len());
        for (j, row) in table.tuples().iter().enumerate() {
            for (i, fact) in interned.iter().enumerate() {
                if row_unifies(&row.terms, fact) {
                    graph.add_edge(i, j);
                }
            }
        }
        let matching = maximum_matching(&graph);
        if matching.cardinality() != interned.len() {
            return None;
        }
        for (j, row) in table.tuples().iter().enumerate() {
            if let Some(i) = matching.pair_right[j] {
                let fact = &interned[i];
                for (k, term) in row.terms.iter().enumerate() {
                    if let Term::Var(v) = term {
                        pairs.push((*v, fact[k]));
                    }
                }
            }
        }
    }
    Some(fill_unassigned(db, pairs, &avoid_set(db, facts)))
}

// ---------------------------------------------------------------------------------------
// Shared certified-path combinators.
// ---------------------------------------------------------------------------------------

/// The certificate for "no world satisfies the claim": [`Certificate::EmptyRep`] when the
/// representation is provably empty (the checker re-derives that), otherwise the search
/// itself is the evidence and the verdict rests on [`Certificate::Exhaustive`].
pub(crate) fn no_world_cert(db: &CDatabase) -> Certificate {
    if db.has_satisfiable_globals() {
        Certificate::Exhaustive
    } else {
        Certificate::EmptyRep
    }
}

/// Conjunctive per-shard witness extraction (membership, covering): run `group_witness`
/// on every shard group through the certificate-aware memo, and merge the per-group
/// bindings by union — groups are variable-disjoint, so the merged binding is a single
/// valuation whose restriction to each group is that group's witness.  Returns
/// `(false, None)` as soon as one group fails (the caller derives the no-certificate at
/// the view level) and `(true, None)` if a replayed entry carries an unusable
/// certificate shape (defensive; the memo only replays entries this module stored).
pub(crate) fn per_shard_witness(
    db: &CDatabase,
    request: &Instance,
    engine: &Engine,
    op: MemoOp,
    mut group_witness: impl FnMut(
        &CDatabase,
        &Instance,
        &mut BudgetCounter,
    ) -> Result<Option<Binding>, DecisionError>,
) -> Result<(bool, Option<Binding>), DecisionError> {
    let Some(parts) = crate::engine::split_by_group(db, request) else {
        return Ok((false, None));
    };
    let mut counter = engine.config().counter();
    let mut merged: Binding = Vec::new();
    for (group, part) in db.shard_groups().iter().zip(&parts) {
        let gdb = group.database();
        let (ok, cert) = engine.memo_certified(op, gdb, part, None, || {
            Ok(match group_witness(gdb, part, &mut counter)? {
                Some(w) => (true, Some(Certificate::witness(valuation(w)))),
                None => (false, Some(no_world_cert(gdb))),
            })
        })?;
        if !ok {
            return Ok((false, None));
        }
        match cert {
            Some(Certificate::Witness { valuation }) => merged.extend(valuation.iter()),
            _ => return Ok((true, None)),
        }
    }
    Ok((true, Some(merged)))
}

/// Stitch a single group's counter-world into a valuation of the **whole** database:
/// every other shard group gets its base completion (any world of that group).  The
/// claims this serves are robust to what the other groups do — a fact missing from (or
/// escaping) group `g` stays missing/escaped whatever the rest of the world looks like.
/// `None` iff some other group's globals are unsatisfiable, which the per-shard
/// dispatchers rule out before searching.
pub(crate) fn stitch_counter_world(
    db: &CDatabase,
    g_idx: usize,
    mut witness: Binding,
) -> Option<Binding> {
    for (j, other) in db.shard_groups().iter().enumerate() {
        if j == g_idx {
            continue;
        }
        let odb = other.database();
        witness.extend(base_completion(odb, &odb.constants())?);
    }
    Some(witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Budget;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::{CTable, CTuple};
    use pw_relational::rel;

    fn counter() -> BudgetCounter {
        Budget(1_000_000).counter()
    }

    fn world(db: &CDatabase, pairs: Binding) -> Instance {
        valuation(pairs)
            .world_of(db)
            .expect("extracted valuations are total and satisfying")
    }

    #[test]
    fn member_witness_world_is_exactly_the_instance() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Row (1) present iff x = 0; row (2) present iff x ≠ 0.
        let t = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [
                CTuple::with_condition([Term::constant(1)], Conjunction::new([Atom::eq(x, 0)])),
                CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::neq(x, 0)])),
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        for inst in [
            Instance::single("R", rel![[1]]),
            Instance::single("R", rel![[2]]),
        ] {
            let w = member_witness(&db, &inst, &mut counter()).unwrap().unwrap();
            assert!(world(&db, w).same_facts(&inst));
        }
        assert!(
            member_witness(&db, &Instance::single("R", rel![[1], [2]]), &mut counter())
                .unwrap()
                .is_none()
        );
        assert!(member_witness(&db, &Instance::new(), &mut counter())
            .unwrap()
            .is_none());
    }

    #[test]
    fn cover_witness_world_contains_the_facts() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::i_table(
            "R",
            1,
            Conjunction::new([Atom::neq(x, y)]),
            [vec![Term::Var(x)], vec![Term::Var(y)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let facts = Instance::single("R", rel![[1], [2]]);
        let w = cover_witness(&db, &facts, &mut counter()).unwrap().unwrap();
        assert!(facts.is_subinstance_of(&world(&db, w)));
        // x ≠ y forbids both rows collapsing onto three distinct facts with two rows.
        assert!(cover_witness(
            &db,
            &Instance::single("R", rel![[1], [2], [3]]),
            &mut counter()
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn missing_witness_world_misses_a_fact() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // {(x)} with x ≠ 1: the fact (1) is missing from every world, (5) from some.
        let t = CTable::i_table(
            "R",
            1,
            Conjunction::new([Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let facts = Instance::single("R", rel![[5]]);
        let w = missing_witness(&db, &facts, &mut counter())
            .unwrap()
            .unwrap();
        assert!(!facts.is_subinstance_of(&world(&db, w)));
        // A constant row can never be missing.
        let forced = CDatabase::single(CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap());
        assert!(
            missing_witness(&forced, &Instance::single("R", rel![[1]]), &mut counter())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn escape_witness_world_differs_from_the_instance() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        let inst = Instance::single("R", rel![[1]]);
        let w = escape_witness(&db, &inst, &mut counter()).unwrap().unwrap();
        let escaped = world(&db, w);
        assert!(
            !escaped.same_facts(&inst),
            "the row escaped to a fresh value"
        );
        // A ground database can never escape its own instance.
        let ground = CDatabase::single(CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap());
        assert!(escape_witness(&ground, &inst, &mut counter())
            .unwrap()
            .is_none());
    }

    #[test]
    fn codd_witnesses_mirror_the_matching_algorithms() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::codd(
            "R",
            2,
            [
                vec![Term::constant(0), Term::Var(x)],
                vec![Term::Var(y), Term::constant(1)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let inst = Instance::single("R", rel![[0, 2], [3, 1]]);
        let w = codd_member_witness(&db, &inst).unwrap();
        assert!(world(&db, w).same_facts(&inst));
        assert!(codd_member_witness(&db, &Instance::single("R", rel![[1, 1]])).is_none());

        // Possibility: one fact covered, the other row roams free.
        let facts = Instance::single("R", rel![[0, 7]]);
        let w = codd_cover_witness(&db, &facts).unwrap();
        assert!(facts.is_subinstance_of(&world(&db, w)));
    }

    #[test]
    fn base_completion_requires_satisfiable_globals() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let sat = CDatabase::single(
            CTable::g_table(
                "R",
                1,
                Conjunction::new([Atom::eq(x, 1)]),
                [vec![Term::Var(x)]],
            )
            .unwrap(),
        );
        let avoid = sat.constants();
        let w = base_completion(&sat, &avoid).unwrap();
        assert_eq!(world(&sat, w), Instance::single("R", rel![[1]]));
        let unsat = CDatabase::single(
            CTable::g_table(
                "R",
                1,
                Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
                [vec![Term::Var(x)]],
            )
            .unwrap(),
        );
        assert!(base_completion(&unsat, &avoid).is_none());
    }
}
