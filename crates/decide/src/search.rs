//! Constraint-propagating backtracking searches shared by the uniqueness, possibility and
//! certainty procedures.
//!
//! All three problems reduce (for c-table databases, i.e. identity or UCQ-convertible
//! views) to satisfiability questions about the conditions attached to rows:
//!
//! * **possibility** — is there a valuation making a chosen set of rows produce a given set
//!   of facts? ([`exists_world_covering`])
//! * **¬certainty / ¬uniqueness** — is there a valuation under which a given fact is *not*
//!   produced by any row ([`exists_world_missing_fact`]) or under which some row produces a
//!   fact outside a given instance ([`exists_world_with_fact_outside`])?
//!
//! Each search asserts atoms into a [`ConstraintSet`] (union–find plus inequality watch
//! list) and backtracks on inconsistency; the searches are exponential in the worst case,
//! which is unavoidable — the corresponding decision problems are NP-/coNP-complete.

use crate::common::{BudgetCounter, BudgetExceeded};
use pw_condition::{Atom, ConstraintSet, Term};
use pw_core::{CDatabase, CTable};
use pw_relational::{Instance, Tuple};

/// Assert all global conditions of the database; `None` means they are jointly
/// unsatisfiable (the represented set of worlds is empty).
fn base_store(db: &CDatabase) -> Option<ConstraintSet> {
    let mut store = ConstraintSet::new();
    for table in db.tables() {
        if !store.assert_conjunction(table.global_condition()) {
            return None;
        }
    }
    Some(store)
}

/// Assert that the row instantiates to exactly `fact` and that its local condition holds.
fn assert_row_produces(store: &mut ConstraintSet, row_terms: &[Term], cond: &pw_condition::Conjunction, fact: &Tuple) -> bool {
    if !store.assert_conjunction(cond) {
        return false;
    }
    for (term, value) in row_terms.iter().zip(fact.iter()) {
        if !store.assert_eq(term, &Term::Const(value.clone())) {
            return false;
        }
    }
    true
}

/// Is there a valuation (satisfying the global conditions) under which every fact of
/// `facts` is produced by some row of its relation?  This is the core of the possibility
/// problem: the produced world then *contains* `facts` (other rows may add more facts,
/// which is allowed).
pub fn exists_world_covering(
    db: &CDatabase,
    facts: &Instance,
    counter: &mut BudgetCounter,
) -> Result<bool, BudgetExceeded> {
    // Facts in relations the database does not have can never be produced.
    for (name, rel) in facts.iter() {
        if rel.is_empty() {
            continue;
        }
        match db.table(name) {
            Some(t) if t.arity() == rel.arity() => {}
            _ => return Ok(false),
        }
    }
    let Some(store) = base_store(db) else {
        return Ok(false);
    };
    // Flatten the facts into a work list of (table, fact) pairs.
    let work: Vec<(&CTable, Tuple)> = facts
        .iter()
        .flat_map(|(name, rel)| {
            let table = db.table(name);
            rel.iter()
                .filter_map(move |fact| table.map(|t| (t, fact.clone())))
        })
        .collect();
    // Distinct facts must come from distinct rows (one row yields at most one fact), so we
    // also track which rows are already in use per table.
    fn search(
        work: &[(&CTable, Tuple)],
        depth: usize,
        used_rows: &mut Vec<(String, usize)>,
        store: &ConstraintSet,
        counter: &mut BudgetCounter,
    ) -> Result<bool, BudgetExceeded> {
        counter.tick()?;
        if depth == work.len() {
            return Ok(true);
        }
        let (table, fact) = &work[depth];
        for (row_idx, row) in table.tuples().iter().enumerate() {
            if used_rows
                .iter()
                .any(|(name, idx)| name == table.name() && *idx == row_idx)
            {
                continue;
            }
            let mut store2 = store.clone();
            if !assert_row_produces(&mut store2, &row.terms, &row.condition, fact) {
                continue;
            }
            used_rows.push((table.name().to_owned(), row_idx));
            let found = search(work, depth + 1, used_rows, &store2, counter)?;
            used_rows.pop();
            if found {
                return Ok(true);
            }
        }
        Ok(false)
    }
    let mut used_rows = Vec::new();
    search(&work, 0, &mut used_rows, &store, counter)
}

/// Is there a valuation (satisfying the global conditions) under which **no** row of the
/// named table produces `fact`?  Used as the complement of certainty and as half of the
/// complement of uniqueness.
///
/// For every row we must pick a reason it does not produce the fact: either one atom of its
/// local condition is falsified, or one position of the row differs from the fact.
pub fn exists_world_missing_fact(
    db: &CDatabase,
    relation: &str,
    fact: &Tuple,
    counter: &mut BudgetCounter,
) -> Result<bool, BudgetExceeded> {
    let Some(table) = db.table(relation) else {
        // The database has no such relation: no world ever contains the fact.
        return Ok(true);
    };
    if table.arity() != fact.arity() {
        return Ok(true);
    }
    let Some(store) = base_store(db) else {
        // Empty representation: there is no world at all, hence no world missing the fact
        // either.  Callers treat the empty rep separately; answering false keeps
        // "certainty" vacuously true.
        return Ok(false);
    };

    fn search(
        table: &CTable,
        fact: &Tuple,
        row_idx: usize,
        store: &ConstraintSet,
        counter: &mut BudgetCounter,
    ) -> Result<bool, BudgetExceeded> {
        counter.tick()?;
        if row_idx == table.len() {
            return Ok(true);
        }
        let row = &table.tuples()[row_idx];
        // Reason 1: some position of the row differs from the fact.
        for (term, value) in row.terms.iter().zip(fact.iter()) {
            let mut store2 = store.clone();
            if !store2.assert_neq(term, &Term::Const(value.clone())) {
                continue;
            }
            if search(table, fact, row_idx + 1, &store2, counter)? {
                return Ok(true);
            }
        }
        // Reason 2: some atom of the local condition is falsified.
        for atom in row.condition.atoms() {
            let mut store2 = store.clone();
            let ok = match atom {
                Atom::Eq(a, b) => store2.assert_neq(a, b),
                Atom::Neq(a, b) => store2.assert_eq(a, b),
            };
            if !ok {
                continue;
            }
            if search(table, fact, row_idx + 1, &store2, counter)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
    search(table, fact, 0, &store, counter)
}

/// Is there a valuation (satisfying the global conditions) under which some row produces a
/// fact **outside** the given instance?  The other half of the complement of uniqueness.
pub fn exists_world_with_fact_outside(
    db: &CDatabase,
    instance: &Instance,
    counter: &mut BudgetCounter,
) -> Result<bool, BudgetExceeded> {
    let Some(store) = base_store(db) else {
        return Ok(false);
    };
    for table in db.tables() {
        let rel = instance.relation_or_empty(table.name(), table.arity());
        let facts: Vec<&Tuple> = rel.iter().collect();
        for row in table.tuples() {
            // The row must be present (local condition holds) and differ from every fact.
            let mut base = store.clone();
            if !base.assert_conjunction(&row.condition) {
                continue;
            }
            if escape_every_fact(&row.terms, &facts, 0, &base, counter)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Recursive helper: make the row differ from each fact in turn (choosing a differing
/// position per fact).
fn escape_every_fact(
    row_terms: &[Term],
    facts: &[&Tuple],
    idx: usize,
    store: &ConstraintSet,
    counter: &mut BudgetCounter,
) -> Result<bool, BudgetExceeded> {
    counter.tick()?;
    if idx == facts.len() {
        return Ok(true);
    }
    let fact = facts[idx];
    for (term, value) in row_terms.iter().zip(fact.iter()) {
        let mut store2 = store.clone();
        if !store2.assert_neq(term, &Term::Const(value.clone())) {
            continue;
        }
        if escape_every_fact(row_terms, facts, idx + 1, &store2, counter)? {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Budget;
    use pw_condition::{Conjunction, VarGen};
    use pw_core::CTuple;
    use pw_relational::{rel, tup};

    fn counter() -> BudgetCounter {
        Budget(1_000_000).counter()
    }

    #[test]
    fn covering_simple_codd_table() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::codd(
            "R",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::Var(y), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        // {(1, 5)} is coverable by the first row.
        assert!(exists_world_covering(&db, &Instance::single("R", rel![[1, 5]]), &mut counter()).unwrap());
        // {(1, 5), (7, 2)} needs both rows — fine.
        assert!(exists_world_covering(
            &db,
            &Instance::single("R", rel![[1, 5], [7, 2]]),
            &mut counter()
        )
        .unwrap());
        // Three facts cannot come from two rows.
        assert!(!exists_world_covering(
            &db,
            &Instance::single("R", rel![[1, 5], [7, 2], [1, 6]]),
            &mut counter()
        )
        .unwrap());
        // A fact incompatible with both rows.
        assert!(!exists_world_covering(&db, &Instance::single("R", rel![[3, 4]]), &mut counter()).unwrap());
    }

    #[test]
    fn covering_respects_conditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::new(
            "R",
            1,
            Conjunction::new([Atom::neq(x, 1)]),
            [CTuple::of_terms([Term::Var(x)])],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(exists_world_covering(&db, &Instance::single("R", rel![[2]]), &mut counter()).unwrap());
        assert!(!exists_world_covering(&db, &Instance::single("R", rel![[1]]), &mut counter()).unwrap());
        // Unknown relation.
        assert!(!exists_world_covering(&db, &Instance::single("S", rel![[2]]), &mut counter()).unwrap());
    }

    #[test]
    fn missing_fact_search() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // R = {(1), (x)}: the fact (1) is in every world; (2) is missing from some.
        let t = CTable::codd("R", 1, [vec![Term::constant(1)], vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        assert!(!exists_world_missing_fact(&db, "R", &tup![1], &mut counter()).unwrap());
        assert!(exists_world_missing_fact(&db, "R", &tup![2], &mut counter()).unwrap());
        // A fact of a relation the database does not have is missing from every world.
        assert!(exists_world_missing_fact(&db, "S", &tup![1], &mut counter()).unwrap());
    }

    #[test]
    fn missing_fact_with_conditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Row (7) is present iff x = 0; so (7) is missing exactly when x ≠ 0.
        let t = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [CTuple::with_condition(
                [Term::constant(7)],
                Conjunction::new([Atom::eq(x, 0)]),
            )],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(exists_world_missing_fact(&db, "R", &tup![7], &mut counter()).unwrap());
        // With the global condition x = 0 the row is always present.
        let t2 = CTable::new(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 0)]),
            [CTuple::with_condition(
                [Term::constant(7)],
                Conjunction::new([Atom::eq(x, 0)]),
            )],
        )
        .unwrap();
        let db2 = CDatabase::single(t2);
        assert!(!exists_world_missing_fact(&db2, "R", &tup![7], &mut counter()).unwrap());
    }

    #[test]
    fn fact_outside_search() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("R", 1, [vec![Term::constant(1)], vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        // Against I = {(1)}: x can take a value ≠ 1, producing a fact outside I.
        assert!(exists_world_with_fact_outside(&db, &Instance::single("R", rel![[1]]), &mut counter()).unwrap());
        // A ground table never escapes its own instance.
        let ground = CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap();
        let db2 = CDatabase::single(ground);
        assert!(!exists_world_with_fact_outside(&db2, &Instance::single("R", rel![[1]]), &mut counter()).unwrap());
        // With a global condition x = 1, the variable row cannot escape either.
        let pinned = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1)]),
            [vec![Term::constant(1)], vec![Term::Var(x)]],
        )
        .unwrap();
        let db3 = CDatabase::single(pinned);
        assert!(!exists_world_with_fact_outside(&db3, &Instance::single("R", rel![[1]]), &mut counter()).unwrap());
    }

    #[test]
    fn unsatisfiable_globals_short_circuit() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(!exists_world_covering(&db, &Instance::single("R", rel![[1]]), &mut counter()).unwrap());
        assert!(!exists_world_missing_fact(&db, "R", &tup![1], &mut counter()).unwrap());
        assert!(!exists_world_with_fact_outside(&db, &Instance::new(), &mut counter()).unwrap());
    }
}
