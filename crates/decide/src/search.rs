//! Constraint-propagating backtracking searches shared by the uniqueness, possibility and
//! certainty procedures — thin sequential façades over the [`crate::engine`] substrate.
//!
//! All three problems reduce (for c-table databases, i.e. identity or UCQ-convertible
//! views) to satisfiability questions about the conditions attached to rows:
//!
//! * **possibility** — is there a valuation making a chosen set of rows produce a given set
//!   of facts? ([`exists_world_covering`])
//! * **¬certainty / ¬uniqueness** — is there a valuation under which a given fact is *not*
//!   produced by any row ([`exists_world_missing_fact`]) or under which some row produces a
//!   fact outside a given instance ([`exists_world_with_fact_outside`])?
//!
//! The searches themselves live in [`crate::engine`]: each one asserts atoms into a
//! [`pw_condition::ConstraintSet`] (union–find plus inequality watch list) and backtracks
//! on inconsistency via undo-trail checkpoints.  The entry points here keep the historical
//! sequential signatures — a `&mut BudgetCounter` threaded through consecutive searches —
//! by seeding an engine context from the counter and writing the unspent budget back, so
//! legacy callers and the parallel paths charge the same budget for the same tree.  The
//! searches are exponential in the worst case, which is unavoidable — the corresponding
//! decision problems are NP-/coNP-complete.

use crate::common::{Budget, BudgetCounter, DecisionError};
use crate::engine::{Ctx, Engine, EngineConfig};
use pw_core::CDatabase;
use pw_relational::{Instance, Tuple};

/// Run `f` against a transient single-threaded engine whose budget pool is seeded from
/// `counter`; unspent budget is written back so multi-phase callers (e.g. the uniqueness
/// complement) keep their historical shared-budget semantics.
fn run_with_counter(
    counter: &mut BudgetCounter,
    f: impl FnOnce(&Engine, &Ctx) -> Result<bool, DecisionError>,
) -> Result<bool, DecisionError> {
    let budget = Budget(counter.remaining());
    let engine = Engine::new(EngineConfig::sequential(budget));
    let ctx = Ctx::new(budget).with_limits(counter.limits().clone());
    let result = f(&engine, &ctx);
    counter.set_remaining(ctx.budget_remaining());
    result
}

/// Is there a valuation (satisfying the global conditions) under which every fact of
/// `facts` is produced by some row of its relation?  This is the core of the possibility
/// problem: the produced world then *contains* `facts` (other rows may add more facts,
/// which is allowed).
pub fn exists_world_covering(
    db: &CDatabase,
    facts: &Instance,
    counter: &mut BudgetCounter,
) -> Result<bool, DecisionError> {
    run_with_counter(counter, |engine, ctx| engine.covering_ctx(db, facts, ctx))
}

/// Is there a valuation (satisfying the global conditions) under which **no** row of the
/// named table produces `fact`?  Used as the complement of certainty and as half of the
/// complement of uniqueness.
///
/// For every row the search picks a reason it does not produce the fact: either one atom
/// of its local condition is falsified, or one position of the row differs from the fact.
pub fn exists_world_missing_fact(
    db: &CDatabase,
    relation: &str,
    fact: &Tuple,
    counter: &mut BudgetCounter,
) -> Result<bool, DecisionError> {
    let mut single = Instance::new();
    let mut rel = pw_relational::Relation::empty(fact.arity());
    rel.insert(fact.clone()).expect("arity matches");
    single.insert_relation(relation.to_owned(), rel);
    run_with_counter(counter, |engine, ctx| {
        engine.missing_any_ctx(db, &single, ctx)
    })
}

/// Is there a valuation (satisfying the global conditions) under which some row produces a
/// fact **outside** the given instance?  The other half of the complement of uniqueness.
pub fn exists_world_with_fact_outside(
    db: &CDatabase,
    instance: &Instance,
    counter: &mut BudgetCounter,
) -> Result<bool, DecisionError> {
    run_with_counter(counter, |engine, ctx| {
        engine.fact_outside_ctx(db, instance, ctx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::{CTable, CTuple};
    use pw_relational::{rel, tup};

    fn counter() -> BudgetCounter {
        Budget(1_000_000).counter()
    }

    #[test]
    fn covering_simple_codd_table() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::codd(
            "R",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::Var(y), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        // {(1, 5)} is coverable by the first row.
        assert!(
            exists_world_covering(&db, &Instance::single("R", rel![[1, 5]]), &mut counter())
                .unwrap()
        );
        // {(1, 5), (7, 2)} needs both rows — fine.
        assert!(exists_world_covering(
            &db,
            &Instance::single("R", rel![[1, 5], [7, 2]]),
            &mut counter()
        )
        .unwrap());
        // Three facts cannot come from two rows.
        assert!(!exists_world_covering(
            &db,
            &Instance::single("R", rel![[1, 5], [7, 2], [1, 6]]),
            &mut counter()
        )
        .unwrap());
        // A fact incompatible with both rows.
        assert!(
            !exists_world_covering(&db, &Instance::single("R", rel![[3, 4]]), &mut counter())
                .unwrap()
        );
    }

    #[test]
    fn covering_respects_conditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::new(
            "R",
            1,
            Conjunction::new([Atom::neq(x, 1)]),
            [CTuple::of_terms([Term::Var(x)])],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(
            exists_world_covering(&db, &Instance::single("R", rel![[2]]), &mut counter()).unwrap()
        );
        assert!(
            !exists_world_covering(&db, &Instance::single("R", rel![[1]]), &mut counter()).unwrap()
        );
        // Unknown relation.
        assert!(
            !exists_world_covering(&db, &Instance::single("S", rel![[2]]), &mut counter()).unwrap()
        );
    }

    #[test]
    fn missing_fact_search() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // R = {(1), (x)}: the fact (1) is in every world; (2) is missing from some.
        let t = CTable::codd("R", 1, [vec![Term::constant(1)], vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        assert!(!exists_world_missing_fact(&db, "R", &tup![1], &mut counter()).unwrap());
        assert!(exists_world_missing_fact(&db, "R", &tup![2], &mut counter()).unwrap());
        // A fact of a relation the database does not have is missing from every world.
        assert!(exists_world_missing_fact(&db, "S", &tup![1], &mut counter()).unwrap());
    }

    #[test]
    fn missing_fact_with_conditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Row (7) is present iff x = 0; so (7) is missing exactly when x ≠ 0.
        let t = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [CTuple::with_condition(
                [Term::constant(7)],
                Conjunction::new([Atom::eq(x, 0)]),
            )],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(exists_world_missing_fact(&db, "R", &tup![7], &mut counter()).unwrap());
        // With the global condition x = 0 the row is always present.
        let t2 = CTable::new(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 0)]),
            [CTuple::with_condition(
                [Term::constant(7)],
                Conjunction::new([Atom::eq(x, 0)]),
            )],
        )
        .unwrap();
        let db2 = CDatabase::single(t2);
        assert!(!exists_world_missing_fact(&db2, "R", &tup![7], &mut counter()).unwrap());
    }

    #[test]
    fn fact_outside_search() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("R", 1, [vec![Term::constant(1)], vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        // Against I = {(1)}: x can take a value ≠ 1, producing a fact outside I.
        assert!(exists_world_with_fact_outside(
            &db,
            &Instance::single("R", rel![[1]]),
            &mut counter()
        )
        .unwrap());
        // A ground table never escapes its own instance.
        let ground = CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap();
        let db2 = CDatabase::single(ground);
        assert!(!exists_world_with_fact_outside(
            &db2,
            &Instance::single("R", rel![[1]]),
            &mut counter()
        )
        .unwrap());
        // With a global condition x = 1, the variable row cannot escape either.
        let pinned = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1)]),
            [vec![Term::constant(1)], vec![Term::Var(x)]],
        )
        .unwrap();
        let db3 = CDatabase::single(pinned);
        assert!(!exists_world_with_fact_outside(
            &db3,
            &Instance::single("R", rel![[1]]),
            &mut counter()
        )
        .unwrap());
    }

    #[test]
    fn unsatisfiable_globals_short_circuit() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(
            !exists_world_covering(&db, &Instance::single("R", rel![[1]]), &mut counter()).unwrap()
        );
        assert!(!exists_world_missing_fact(&db, "R", &tup![1], &mut counter()).unwrap());
        assert!(!exists_world_with_fact_outside(&db, &Instance::new(), &mut counter()).unwrap());
    }
}
