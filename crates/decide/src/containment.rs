//! The containment problem `CONT(q₀, q)`: is every world of the left view also a world of
//! the right view?
//!
//! * [`freeze`] — the homomorphism technique of Theorem 4.1(2,3): for a g-table left-hand
//!   side and an e-table (or Codd-table) right-hand side, `rep(𝒯₀) ⊆ rep(𝒯)` iff the frozen
//!   instance K₀ (every null replaced by a distinct fresh constant) is a member of
//!   `rep(𝒯)`.  With a Codd-table right-hand side the membership test is the matching
//!   algorithm and the whole procedure is polynomial; with an e-table it is an NP call.
//! * [`forall_exists`] — the general Π₂ᵖ procedure of Proposition 2.1(1): for every
//!   canonical valuation σ₀ of the left database, `q₀(σ₀(𝒯₀))` must be a member of the
//!   right view.
//! * [`decide`] — dispatch following Fig. 2.

use crate::certify;
use crate::common::{
    evaluation_delta, freeze_database, normalize_database, Budget, Decision, DecisionError,
    Strategy,
};
use crate::engine::{Engine, EngineConfig};
use crate::membership;
use pw_core::{CDatabase, Certificate, PairCert, TableClass, View};
use pw_relational::Instance;
use std::sync::Mutex;

/// Decide `CONT(q₀, q)`: `rep(view0) ⊆ rep(view)`.
pub fn decide(view0: &View, view: &View, budget: Budget) -> Result<bool, DecisionError> {
    decide_with(view0, view, &Engine::new(EngineConfig::sequential(budget))).answer
}

/// [`decide`] on an explicit [`Engine`]: the ∀ half of the Π₂ᵖ procedure (the enumeration
/// of the left view's canonical valuations) runs on the engine's worker pool; each
/// worker's ∃ half (the membership call on the right) stays sequential, so the engine's
/// threads are never oversubscribed.  The ∀ enumeration is scheduled by work stealing
/// by default (a lopsided valuation tree re-splits under starving thieves); the static
/// frontier split survives behind
/// [`EngineConfig::without_work_stealing`](crate::EngineConfig::without_work_stealing).
///
/// Returns a [`Decision`] carrying the answer next to the [`Strategy`] that produced
/// (or attempted) it, so the strategy survives a budget-exceeded search.
pub fn decide_with(view0: &View, view: &View, engine: &Engine) -> Decision {
    let strategy = strategy_with(view0, view, engine.config().per_shard);
    let answer = match strategy {
        Strategy::Freeze => freeze(&view0.db, &view.db, engine.config().budget),
        Strategy::PerShard { .. } => per_shard(view0, view, engine),
        _ => forall_exists_with(view0, view, engine),
    };
    Decision::of(answer, strategy)
}

/// The strategy [`decide`] will use for a pair of views (mirrors the upper-bound regions of
/// Fig. 2).
pub fn strategy(view0: &View, view: &View) -> Strategy {
    strategy_with(view0, view, true)
}

/// [`decide_with`] plus certificate extraction: a *yes* carries
/// [`Certificate::EmptyRep`], a replayable [`Certificate::FrozenMembership`] (Theorem
/// 4.1), a per-aligned-pair [`Certificate::Decomposition`], or rests on
/// [`Certificate::Exhaustive`]; a *no* carries a [`Certificate::CounterWorld`] — a
/// valuation inducing a world of the left side that escapes the right (the checker
/// verifies the constructive left half; the non-membership half is the documented
/// trusted seam).
pub(crate) fn decide_certified(view0: &View, view: &View, engine: &Engine) -> Decision {
    if !engine.config().certify {
        return decide_with(view0, view, engine);
    }
    let strategy = strategy_with(view0, view, engine.config().per_shard);
    match strategy {
        Strategy::Freeze => certified_freeze(view0, view, engine, strategy),
        Strategy::PerShard { .. } => certified_per_shard(view0, view, engine, strategy),
        _ => certified_forall_exists(view0, view, engine, strategy),
    }
}

/// Certified twin of [`freeze`]: the same normalize → freeze → membership pipeline, with
/// the inner membership extracting the witness valuation the checker replays (it
/// recomputes K₀ itself, so the certificate carries only the right-side valuation).
fn certified_freeze(view0: &View, view: &View, engine: &Engine, strategy: Strategy) -> Decision {
    let Some(normalized) = normalize_database(&view0.db) else {
        return Decision::certified(Ok(true), strategy, Some(Certificate::EmptyRep));
    };
    let (k0, _fresh) = freeze_database(&normalized, &view.db.constants());
    let witness = if view.db.is_decoupled_codd() {
        Ok(certify::codd_member_witness(&view.db, &k0))
    } else if view.db.shard_groups().len() > 1 {
        // Mirror the membership dispatch `freeze` delegates to: per-group searches
        // through the certificate-aware memo, merged into one right-side binding.
        match membership::certified_per_shard_member(&view.db, &k0, engine) {
            Ok((true, Some(w))) => Ok(Some(certify::fill_unassigned(
                &view.db,
                w,
                &certify::avoid_set(&view.db, &k0),
            ))),
            Ok((true, None)) => {
                // Replayed without a usable witness shape — the answer stands, the
                // certificate does not.
                return Decision::of(Ok(true), strategy);
            }
            Ok((false, _)) => Ok(None),
            Err(e) => Err(e),
        }
    } else {
        let mut counter = engine.config().counter();
        certify::member_witness(&view.db, &k0, &mut counter)
    };
    match witness {
        Ok(Some(w)) => Decision::certified(
            Ok(true),
            strategy,
            Some(Certificate::FrozenMembership {
                witness: Box::new(Certificate::witness(certify::valuation(w))),
            }),
        ),
        Ok(None) => {
            // K₀ itself (as a valuation of the left database) is the counter-world: its
            // genericity means no right-side valuation can reach it.
            let mut avoid = view0.db.constants();
            avoid.extend(view.db.constants());
            let cert = certify::base_completion(&view0.db, &avoid)
                .map(|w| Certificate::counter_world(certify::valuation(w)));
            Decision::certified(Ok(false), strategy, cert)
        }
        Err(e) => Decision::of(Err(e), strategy),
    }
}

/// Certified twin of [`per_shard`]: the same aligned-pair recursion through the
/// certificate-aware memo (same `MemoOp::Containment` keys), with the per-pair
/// certificates assembled into a [`Certificate::Decomposition`] on *yes* and a failing
/// pair's counter-world stitched with the other left groups' base completions on *no*.
fn certified_per_shard(view0: &View, view: &View, engine: &Engine, strategy: Strategy) -> Decision {
    if !view0.db.has_satisfiable_globals() {
        return Decision::certified(Ok(true), strategy, Some(Certificate::EmptyRep));
    }
    use std::collections::BTreeSet;
    let names = |g: &pw_core::ShardGroup| -> BTreeSet<String> {
        g.database()
            .tables()
            .iter()
            .map(|t| t.name().to_owned())
            .collect()
    };
    let rights: std::collections::BTreeMap<BTreeSet<String>, &pw_core::ShardGroup> = view
        .db
        .shard_groups()
        .iter()
        .map(|g| (names(g), g))
        .collect();
    let mut pairs: Vec<PairCert> = Vec::new();
    let mut all_certified = true;
    for (g_idx, left) in view0.db.shard_groups().iter().enumerate() {
        let right = rights
            .get(&names(left))
            .expect("strategy_with verified the partitions align");
        let (ldb, rdb) = (left.database(), right.database());
        let empty = Instance::new();
        let outcome = engine.memo_certified(
            crate::engine::MemoOp::Containment,
            ldb,
            &empty,
            Some(rdb),
            || {
                let decision = decide_certified(
                    &View::identity(ldb.clone()),
                    &View::identity(rdb.clone()),
                    engine,
                );
                decision.answer.map(|a| (a, decision.certificate))
            },
        );
        match outcome {
            Ok((true, cert)) => match cert {
                Some(c) => pairs.push(PairCert {
                    relations: names(left),
                    certificate: c,
                }),
                None => all_certified = false,
            },
            Ok((false, cert)) => {
                // The pair's counter-world is a world of the left *group*; extend it
                // with any world of every other left group.
                let stitched = match cert {
                    Some(Certificate::CounterWorld { valuation }) => {
                        certify::stitch_counter_world(&view0.db, g_idx, valuation.iter().collect())
                            .map(|w| Certificate::counter_world(certify::valuation(w)))
                    }
                    _ => None,
                };
                return Decision::certified(Ok(false), strategy, stitched);
            }
            Err(e) => return Decision::of(Err(e), strategy),
        }
    }
    let cert = all_certified.then_some(Certificate::Decomposition { pairs });
    Decision::certified(Ok(true), strategy, cert)
}

/// Certified twin of [`forall_exists_with`]: the enumeration captures the failing left
/// valuation as the counter-world.
fn certified_forall_exists(
    view0: &View,
    view: &View,
    engine: &Engine,
    strategy: Strategy,
) -> Decision {
    if !view0.db.has_satisfiable_globals() {
        return Decision::certified(Ok(true), strategy, Some(Certificate::EmptyRep));
    }
    let vars: Vec<_> = view0.db.variables().into_iter().collect();
    let mut delta = evaluation_delta(&view0.db, view.db.constants());
    delta.extend(view0.query.constants());
    delta.extend(view.query.constants());
    let budget = engine.config().budget;
    let inner_failure: Mutex<Option<DecisionError>> = Mutex::new(None);
    let counterexample =
        engine.find_canonical_valuation(view0.db.symbols(), &vars, &delta, |valuation| {
            let world = valuation.world_of(&view0.db)?;
            let left_output: Instance = view0.query.eval(&world);
            match membership::view_membership(view, &left_output, budget) {
                Ok(true) => None,
                Ok(false) => Some(valuation.clone()),
                Err(err) => {
                    // Not a witness: this world's membership is unresolved.  Record
                    // the failure and keep searching — another world may be a
                    // definitive counterexample, which beats the failure.
                    crate::engine::lock_unpoisoned(&inner_failure).get_or_insert(err);
                    None
                }
            }
        });
    match counterexample {
        Err(e) => Decision::of(Err(e), strategy),
        Ok(Some(v)) => {
            Decision::certified(Ok(false), strategy, Some(Certificate::counter_world(v)))
        }
        Ok(None) => match crate::engine::lock_unpoisoned(&inner_failure).take() {
            Some(err) => Decision::of(Err(err), strategy),
            None => Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive)),
        },
    }
}

fn strategy_with(view0: &View, view: &View, per_shard: bool) -> Strategy {
    let identity = view0.query.is_identity() && view.query.is_identity();
    if identity
        && view0.db.classify() <= TableClass::GTable
        && view.db.classify() <= TableClass::ETable
    {
        Strategy::Freeze
    } else if per_shard && identity {
        match aligned_groups(&view0.db, &view.db) {
            Some(groups) => Strategy::PerShard { groups },
            None => Strategy::WorldEnumeration,
        }
    } else {
        Strategy::WorldEnumeration
    }
}

/// Do the two databases decompose into the *same* (non-trivial) partition of relations?
/// Containment of products factorizes only when the two sides group their relations
/// identically: `Π_g rep(L_g) ⊆ Π_g rep(R_g)` iff the left is empty or every aligned
/// pair is contained (pick any left world of one group, extend it with worlds of the
/// other groups — all non-empty — and project the containment).  Mismatched partitions
/// or schemas fall back to the joint Π₂ᵖ enumeration.
fn aligned_groups(db0: &CDatabase, db: &CDatabase) -> Option<usize> {
    use std::collections::BTreeSet;
    let (g0, g1) = (db0.shard_groups(), db.shard_groups());
    if g0.len() < 2 || g0.len() != g1.len() {
        return None;
    }
    fn names(g: &pw_core::ShardGroup) -> BTreeSet<&str> {
        g.database().tables().iter().map(|t| t.name()).collect()
    }
    let s0: BTreeSet<BTreeSet<&str>> = g0.iter().map(names).collect();
    let s1: BTreeSet<BTreeSet<&str>> = g1.iter().map(names).collect();
    (s0 == s1).then_some(g0.len())
}

/// Containment decomposed over aligned shard groups: an empty left representation is
/// contained in everything; otherwise every aligned group pair must be contained, with
/// each pair dispatched recursively (a group pair in the g-table ⊆ e-table region runs
/// the *polynomial* freeze — isolating the tractable fragments the joint enumeration
/// would have drowned in its exponent).  Each group pair searches under the full request
/// budget: group decompositions are how a budget-sized search stays feasible at all
/// here, and a per-group slice would make the bound depend on the grouping.
fn per_shard(view0: &View, view: &View, engine: &Engine) -> Result<bool, DecisionError> {
    if !view0.db.has_satisfiable_globals() {
        return Ok(true); // rep(view0.db) = ∅ ⊆ anything
    }
    use std::collections::BTreeSet;
    let names = |g: &pw_core::ShardGroup| -> BTreeSet<String> {
        g.database()
            .tables()
            .iter()
            .map(|t| t.name().to_owned())
            .collect()
    };
    let rights: std::collections::BTreeMap<BTreeSet<String>, &pw_core::ShardGroup> = view
        .db
        .shard_groups()
        .iter()
        .map(|g| (names(g), g))
        .collect();
    for left in view0.db.shard_groups() {
        let right = rights
            .get(&names(left))
            .expect("strategy_with verified the partitions align");
        // Per-pair verdicts go through the decision memo keyed by the *left* group's
        // database with the right group held structurally as the key's `rhs`, so a
        // re-decide after a delta replays every aligned pair whose two sides are
        // untouched and two different pairs can never collide.
        let (ldb, rdb) = (left.database(), right.database());
        let empty = Instance::new();
        let answer = engine.memo_decide(
            crate::engine::MemoOp::Containment,
            ldb,
            &empty,
            Some(rdb),
            || {
                decide_with(
                    &View::identity(ldb.clone()),
                    &View::identity(rdb.clone()),
                    engine,
                )
                .answer
            },
        )?;
        if !answer {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Theorem 4.1(2,3): containment of a g-table database in an e-table (or Codd-table)
/// database via the freeze construction.
///
/// The left database is first normalised (equalities folded in).  If its global condition
/// is unsatisfiable the left representation is empty and containment holds trivially.
/// Otherwise every remaining null is replaced by a distinct fresh constant, and the
/// resulting complete instance K₀ is tested for membership on the right — matching for
/// Codd-tables (PTIME overall), backtracking for e-tables (an NP call, as Theorem 4.1(2)
/// promises).
pub fn freeze(db0: &CDatabase, db: &CDatabase, budget: Budget) -> Result<bool, DecisionError> {
    let Some(normalized) = normalize_database(db0) else {
        return Ok(true); // rep(db0) = ∅ ⊆ anything
    };
    let (k0, _fresh) = freeze_database(&normalized, &db.constants());
    membership::decide(db, &k0, budget)
}

/// Proposition 2.1(1): the general Π₂ᵖ procedure.  Every canonical valuation σ₀ of the left
/// database yields a world `q₀(σ₀(𝒯₀))` that must be a member of the right view; Δ is the
/// union of the constants of both inputs (plus both queries, via the instances produced).
pub fn forall_exists(view0: &View, view: &View, budget: Budget) -> Result<bool, DecisionError> {
    forall_exists_with(view0, view, &Engine::new(EngineConfig::sequential(budget)))
}

/// [`forall_exists`] on an explicit [`Engine`] (parallel enumeration of the left
/// valuations).
///
/// A genuine counterexample — a world of the left view that is *not* a member of the
/// right — always wins over an inner membership search running out of budget, matching
/// the engine's "a found witness beats budget exhaustion" rule: inner exhaustions are
/// recorded on the side and only reported when no counterexample is found anywhere.
pub fn forall_exists_with(
    view0: &View,
    view: &View,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    if !view0.db.has_satisfiable_globals() {
        return Ok(true);
    }
    let vars: Vec<_> = view0.db.variables().into_iter().collect();
    let mut delta = evaluation_delta(&view0.db, view.db.constants());
    delta.extend(view0.query.constants());
    delta.extend(view.query.constants());
    let budget = engine.config().budget;
    let inner_failure: Mutex<Option<DecisionError>> = Mutex::new(None);
    let counterexample =
        engine.find_canonical_valuation(view0.db.symbols(), &vars, &delta, |valuation| {
            let world = valuation.world_of(&view0.db)?;
            let left_output: Instance = view0.query.eval(&world);
            match membership::view_membership(view, &left_output, budget) {
                Ok(true) => None,
                Ok(false) => Some(()),
                Err(err) => {
                    // Not a witness: this world's membership is unresolved.  Keep
                    // searching — another world may be a definitive counterexample.
                    crate::engine::lock_unpoisoned(&inner_failure).get_or_insert(err);
                    None
                }
            }
        })?;
    if counterexample.is_some() {
        Ok(false)
    } else if let Some(err) = crate::engine::lock_unpoisoned(&inner_failure).take() {
        Err(err)
    } else {
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::CTable;
    use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};

    fn budget() -> Budget {
        Budget(1_000_000)
    }

    #[test]
    fn instance_contained_in_codd_table() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // 𝒯₀ = ground {(1, 2)};  𝒯 = {(1, x)}: contained.
        let left = CTable::codd("R", 2, [vec![Term::constant(1), Term::constant(2)]]).unwrap();
        let right = CTable::codd("R", 2, [vec![Term::constant(1), Term::Var(x)]]).unwrap();
        let v0 = View::identity(CDatabase::single(left));
        let v = View::identity(CDatabase::single(right));
        assert_eq!(strategy(&v0, &v), Strategy::Freeze);
        assert!(decide(&v0, &v, budget()).unwrap());
        assert!(
            !decide(&v, &v0, budget()).unwrap(),
            "the table represents worlds the single instance does not"
        );
    }

    #[test]
    fn codd_table_contained_in_wider_codd_table() {
        let mut g = VarGen::new();
        let (x, y, z) = (g.fresh(), g.fresh(), g.fresh());
        // 𝒯₀ = {(1, x)}  ⊆  𝒯 = {(y, z)}: every world of 𝒯₀ is a world of 𝒯.
        let left = CTable::codd("R", 2, [vec![Term::constant(1), Term::Var(x)]]).unwrap();
        let right = CTable::codd("R", 2, [vec![Term::Var(y), Term::Var(z)]]).unwrap();
        let v0 = View::identity(CDatabase::single(left));
        let v = View::identity(CDatabase::single(right));
        assert!(decide(&v0, &v, budget()).unwrap());
        assert!(!decide(&v, &v0, budget()).unwrap());
    }

    #[test]
    fn freeze_agrees_with_forall_exists_on_small_cases() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let cases: Vec<(CDatabase, CDatabase)> = vec![
            (
                CDatabase::single(
                    CTable::g_table(
                        "R",
                        1,
                        Conjunction::new([Atom::eq(x, 1)]),
                        [vec![Term::Var(x)]],
                    )
                    .unwrap(),
                ),
                CDatabase::single(CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap()),
            ),
            (
                CDatabase::single(CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap()),
                CDatabase::single(CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap()),
            ),
            (
                CDatabase::single(
                    CTable::codd("R", 2, [vec![Term::Var(x), Term::Var(y)]]).unwrap(),
                ),
                CDatabase::single(
                    CTable::e_table("R", 2, [vec![Term::Var(x), Term::Var(x)]]).unwrap(),
                ),
            ),
            (
                CDatabase::single(
                    CTable::e_table("R", 2, [vec![Term::Var(x), Term::Var(x)]]).unwrap(),
                ),
                CDatabase::single(
                    CTable::codd("R", 2, [vec![Term::Var(x), Term::Var(y)]]).unwrap(),
                ),
            ),
        ];
        for (db0, db) in cases {
            let v0 = View::identity(db0.clone());
            let v = View::identity(db.clone());
            let fast = freeze(&db0, &db, budget()).unwrap();
            let slow = forall_exists(&v0, &v, budget()).unwrap();
            assert_eq!(fast, slow, "freeze vs ∀∃ on {db0} ⊆ {db}");
        }
    }

    #[test]
    fn empty_left_representation_is_contained_in_everything() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let unsat = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let left = CDatabase::single(unsat);
        let right = CDatabase::single(CTable::codd("R", 1, [vec![Term::constant(9)]]).unwrap());
        assert!(freeze(&left, &right, budget()).unwrap());
        assert!(decide(&View::identity(left), &View::identity(right), budget()).unwrap());
    }

    #[test]
    fn containment_with_views_uses_the_general_procedure() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Left: q0 projects the first column of T = {(1, x)} → worlds {{(1)}}.
        // Right: the Codd-table {(y)} represents all single-fact (and with y colliding,
        // nothing else) unary relations, so containment holds.
        let t0 = CTable::codd("T", 2, [vec![Term::constant(1), Term::Var(x)]]).unwrap();
        let q0 = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("a")],
                [qatom!("T"; "a", "b")],
            ))),
        );
        let left = View::new(q0, CDatabase::single(t0));

        let y = g.fresh();
        let right_table = CTable::codd("Q", 1, [vec![Term::Var(y)]]).unwrap();
        let right = View::identity(CDatabase::single(right_table));
        assert_eq!(strategy(&left, &right), Strategy::WorldEnumeration);
        assert!(decide(&left, &right, budget()).unwrap());
        // The reverse fails: the right view also represents {(2)}, which the left cannot be.
        assert!(!decide(&right, &left, budget()).unwrap());
    }

    #[test]
    fn itable_right_hand_side_goes_through_the_general_procedure() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        // 𝒯₀ = {(x)} (all single- or no-fact worlds); 𝒯 = {(y)} with y ≠ 1.
        let left = CDatabase::single(CTable::codd("R", 1, [vec![Term::Var(x)]]).unwrap());
        let right = CDatabase::single(
            CTable::i_table(
                "R",
                1,
                Conjunction::new([Atom::neq(y, 1)]),
                [vec![Term::Var(y)]],
            )
            .unwrap(),
        );
        let v0 = View::identity(left);
        let v = View::identity(right);
        assert_eq!(strategy(&v0, &v), Strategy::WorldEnumeration);
        assert!(
            !decide(&v0, &v, budget()).unwrap(),
            "the world {{(1)}} is not representable on the right"
        );
        assert!(decide(&v, &v0, budget()).unwrap());
    }
}
