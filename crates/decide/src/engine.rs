//! The parallel decision-engine substrate.
//!
//! The NP/coNP/Π₂ᵖ procedures of this crate are complete backtracking searches; on hard
//! inputs they peg a single core while every other core idles.  This module extracts the
//! valuation/constraint searches of [`crate::search`] and [`crate::common`] onto a shared
//! substrate that can drive them with any number of worker threads:
//!
//! * **search nodes** carry a cheaply-forkable [`ConstraintSet`] (undo-trail based
//!   checkpoint/rollback inside a worker, a real clone only when a node crosses threads);
//! * a **work-stealing scheduler** (the default): every worker owns a LIFO deque of
//!   unstarted subtree roots, solves its own newest node depth-first, and — when its
//!   deque runs dry — steals the *oldest* half of a victim's deque (FIFO steal-half:
//!   the shallowest checkpoints are the biggest subtrees), probing victims in an order
//!   drawn from a seeded per-run RNG so runs stay reproducible.  When every deque is
//!   empty but subtrees are still in flight, the busy workers *re-split*: the
//!   depth-first recursion polls a starvation flag and, when thieves are waiting,
//!   re-expands its shallowest live checkpoint — publishing the unexplored sibling
//!   subtrees onto the worker's deque instead of keeping them implicit on the call
//!   stack.  No unsafe code and no extra dependencies (the container has no crates.io
//!   access, so `rayon` is out of reach; `std::thread::scope` plus `Mutex<VecDeque>`
//!   deques carry the load).  The PR 1–7 static scheduler (breadth-first frontier of
//!   `threads × frontier_per_thread` roots drained from one shared queue) is kept
//!   behind [`EngineConfig::without_work_stealing`] as the equivalence oracle;
//! * an **atomic shared budget** ([`SharedBudget`]) charged by all workers, so a budget
//!   means the same total node count whether the search runs on 1 thread or 16;
//! * **early-exit cancellation**: the first witness flips a flag that stops every other
//!   worker at its next tick;
//! * a memoized, hash-consed **condition-satisfiability cache**
//!   ([`pw_condition::SatCache`]) shared by all searches of an [`Engine`], plus memoized
//!   per-database **base stores** (the global conditions asserted once, then cloned), which
//!   is what the batched front door ([`crate::batch`]) amortizes across requests.
//!
//! # Semantics under parallelism
//!
//! Every search here decides an *existential* question ("is there a valuation …?").  The
//! engine guarantees, independently of thread count and scheduling:
//!
//! * `Ok(true)` and `Ok(false)` answers are **identical** to the sequential search's — a
//!   witness exists or it does not, and the engine explores the same tree;
//! * a found witness always wins over budget exhaustion: if any worker finds a witness the
//!   result is `Ok(true)` even if another worker ran out of budget concurrently;
//! * `Err(BudgetExceeded)` is reported **iff** the budget ran out before the tree was
//!   exhausted and no witness was found.  For a tree with no witness this outcome is
//!   deterministic (the tree size and the budget are both fixed numbers); when a witness
//!   exists *and* the budget is within a few nodes of the exact sequential visit count,
//!   scheduling decides whether the witness or the exhaustion is reached first — callers
//!   that need bit-for-bit reproducibility at tight budgets run with `threads = 1`.

use crate::common::{
    Budget, BudgetCounter, BudgetExceeded, CancelToken, DecisionError, FaultPlan, Limits,
    LIMIT_CHECK_MASK,
};
use pw_condition::Variable;
use pw_condition::{Atom, Conjunction, ConstraintSet, SatCache, Term};
use pw_core::{CDatabase, CTable, Certificate, Valuation};
use pw_relational::{Constant, Instance, Sym, Symbols, Tuple};
use std::any::Any;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Recover a lock whose holder panicked.  Every critical section in this module is a
/// single insert/lookup over an always-consistent map, so a poisoned guard carries no
/// broken invariant — propagating the poison would instead fail every *later* request
/// for a panic that was already contained.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a `catch_unwind` payload as the human-readable message for
/// [`DecisionError::WorkerPanicked`].
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// How a general (worst-case exponential) decision procedure should be driven.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads.  `1` reproduces the sequential search exactly.
    pub threads: usize,
    /// Total node budget, shared by all workers.
    pub budget: Budget,
    /// Frontier size per worker of the **static fallback scheduler**
    /// ([`EngineConfig::without_work_stealing`]): the search tree is expanded
    /// breadth-first until `threads × frontier_per_thread` subtree roots exist, then
    /// workers drain them from one shared queue.  Ignored by the default work-stealing
    /// scheduler, which balances load dynamically (steal-half plus subtree
    /// re-splitting) instead of guessing a cut depth up front.
    pub frontier_per_thread: usize,
    /// Dynamic work stealing (the default).  Disable with
    /// [`EngineConfig::without_work_stealing`] to pin the static frontier-split
    /// scheduler — answers, strategies and certificates are bit-identical either way
    /// (both schedulers explore the same tree and charge the same budget ticks); the
    /// flag exists so equivalence tests can cross-check the two paths.
    pub work_stealing: bool,
    /// Seed of the per-run victim-selection RNG of the work-stealing scheduler.  Each
    /// worker derives its probe order from `steal_seed` and its worker index
    /// (splitmix64), so a fixed seed makes the victim sequence reproducible run to run.
    pub steal_seed: u64,
    /// Wall-clock deadline per search, resolved to an absolute instant when each search
    /// (phase) starts and polled on the amortized limit check (~every 1024 ticks), so
    /// the hot loop stays branch-cheap.  A request is a small constant number of search
    /// phases, so a deadline-exceeded request returns well within a small multiple of
    /// this duration.  `None` (the default) checks nothing.
    pub deadline: Option<Duration>,
    /// Cooperative per-request cancellation: share the token with the caller, and any
    /// thread calling [`CancelToken::cancel`] stops every search driven under this
    /// configuration at its next amortized limit check with
    /// [`DecisionError::Cancelled`].  Rides the same signal path as first-witness
    /// cancellation and the deadline.
    pub cancel: Option<Arc<CancelToken>>,
    /// Upper bound on decision-memo entries.  When exceeded, a second-chance (clock)
    /// sweep evicts cold entries — certificates evict with their verdicts — except
    /// while a [`crate::batch::Session::redecide_all`] replay holds the memo pinned.
    /// `None` (the default) never evicts.
    pub memo_capacity: Option<usize>,
    /// Deterministic fault injection for the robustness test-suite; `None` (the
    /// default) injects nothing and costs nothing on the tick hot loop.
    pub faults: Option<Arc<FaultPlan>>,
    /// Fan requests out across independent shard groups when the database's coupling
    /// graph splits ([`pw_core::CDatabase::shard_groups`]).  On by default — answers are
    /// identical to the joint search (groups are variable-disjoint, so `rep(db)` is the
    /// product of the groups' representations) and the joint search's multiplicative
    /// cross-group backtracking becomes a sum of per-group searches.  Disable to force
    /// the joint search, e.g. to cross-check the equivalence in tests.
    pub per_shard: bool,
    /// Attach a [`pw_core::Certificate`] to every definite answer (see `pw_check` for
    /// the acceptance rules).  Off by default: certified decides pay for evidence
    /// extraction — a bounded overhead (the bench harness tracks it), but not free.
    pub certify: bool,
}

impl EngineConfig {
    /// A single-threaded configuration (identical behaviour to the legacy searches).
    pub fn sequential(budget: Budget) -> Self {
        EngineConfig {
            threads: 1,
            budget,
            frontier_per_thread: 8,
            work_stealing: true,
            steal_seed: 0,
            per_shard: true,
            certify: false,
            deadline: None,
            cancel: None,
            memo_capacity: None,
            faults: None,
        }
    }

    /// Use every available core.
    pub fn parallel(budget: Budget) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::with_threads(threads, budget)
    }

    /// An explicit thread count.
    pub fn with_threads(threads: usize, budget: Budget) -> Self {
        EngineConfig {
            threads: threads.max(1),
            budget,
            frontier_per_thread: 8,
            work_stealing: true,
            steal_seed: 0,
            per_shard: true,
            certify: false,
            deadline: None,
            cancel: None,
            memo_capacity: None,
            faults: None,
        }
    }

    /// Pin the static frontier-split scheduler of PR 1–7 (breadth-first frontier, one
    /// shared queue, no stealing).  Answers are bit-identical to the work-stealing
    /// default; equivalence tests run both and compare.
    pub fn without_work_stealing(mut self) -> Self {
        self.work_stealing = false;
        self
    }

    /// Seed the victim-selection RNG of the work-stealing scheduler (see
    /// [`EngineConfig::steal_seed`]).
    pub fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }

    /// Disable the shard-group decomposition: every decision runs the joint search even
    /// when the coupling graph splits.
    pub fn without_per_shard(mut self) -> Self {
        self.per_shard = false;
        self
    }

    /// Enable certificate extraction: every definite answer carries evidence that
    /// `pw_check::verify` accepts.
    pub fn certified(mut self) -> Self {
        self.certify = true;
        self
    }

    /// Give every search a wall-clock deadline (see [`EngineConfig::deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cooperative cancellation token (see [`EngineConfig::cancel`]).
    pub fn with_cancel(mut self, token: Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Bound the decision memo (see [`EngineConfig::memo_capacity`]).  A capacity of 0
    /// is clamped to 1 — the memo's invariants assume the entry just inserted can live
    /// at least until its computation's caller returns.
    pub fn with_memo_capacity(mut self, capacity: usize) -> Self {
        self.memo_capacity = Some(capacity.max(1));
        self
    }

    /// Attach a deterministic [`FaultPlan`] (see [`EngineConfig::faults`]).
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Resolve the slow-path limits for a search starting *now*: the deadline duration
    /// becomes an absolute instant, the cancel token and fault plan are shared.
    pub(crate) fn limits(&self) -> Limits {
        Limits {
            deadline: self.deadline.map(|d| Instant::now() + d),
            cancel: self.cancel.clone(),
            faults: self.faults.clone(),
        }
    }

    /// A sequential budget counter carrying this configuration's limits, so the
    /// sequential backtracking paths honor deadlines, cancellation and fault plans
    /// exactly like the parallel engine does.
    pub(crate) fn counter(&self) -> BudgetCounter {
        self.budget.counter().with_limits(self.limits())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::sequential(Budget::default())
    }
}

/// An atomic search budget shared by all workers of a parallel search.
///
/// The semantics match [`crate::common::BudgetCounter`]: one unit per visited search node,
/// and the search fails with [`BudgetExceeded`] when the pool is empty — except that here
/// the pool is drained concurrently, so a budget bounds the *total* work across threads.
#[derive(Debug)]
pub struct SharedBudget {
    remaining: AtomicU64,
    initial: u64,
}

impl SharedBudget {
    /// A full pool.
    pub fn new(budget: Budget) -> Self {
        SharedBudget {
            remaining: AtomicU64::new(budget.0),
            initial: budget.0,
        }
    }

    /// Charge one unit; returns the total units spent so far across all workers.  The
    /// atomic decrement hands every caller a distinct spent-count, so "every N-th
    /// tick" conditions on the return value fire exactly once per N global ticks no
    /// matter how the ticks are spread over threads — that is what keeps the
    /// amortized deadline check cheap *and* deterministic in frequency.
    pub fn tick(&self) -> Result<u64, BudgetExceeded> {
        let prev = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .map_err(|_| BudgetExceeded)?;
        Ok(self.initial - (prev - 1))
    }

    /// Unspent units.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Units spent so far across all workers (a relaxed snapshot — exact enough for
    /// the scheduler's fault-injection thresholds, which only need "at or after").
    pub fn spent(&self) -> u64 {
        self.initial.saturating_sub(self.remaining())
    }
}

/// Why a worker stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Stop {
    /// The search cannot continue — budget, deadline, external cancellation or an
    /// injected fault.  Carried up as the request's [`DecisionError`].
    Fail(DecisionError),
    /// Another worker of this search found a witness (or panicked): stop quietly,
    /// the driver already knows the outcome.
    Cancelled,
}

/// Shared per-search state: the budget pool and the early-exit flag.
///
/// The pool lives behind an `Arc` so several *consecutive* searches can drain one budget
/// (the legacy `search.rs` wrappers, the two halves of the uniqueness complement) and so
/// a shard-group conjunction can give every group its own cancellation scope without
/// splitting the pool: [`Ctx::fork`] shares the budget but resets the flag — a witness
/// found in one group must stop *that group's* workers, not the next group's search.
pub(crate) struct Ctx {
    budget: Arc<SharedBudget>,
    cancel: AtomicBool,
    limits: Limits,
}

impl Ctx {
    pub(crate) fn new(budget: Budget) -> Self {
        Ctx {
            budget: Arc::new(SharedBudget::new(budget)),
            cancel: AtomicBool::new(false),
            limits: Limits::default(),
        }
    }

    /// Attach slow-path limits (deadline / external cancellation / fault plan); they
    /// are polled every [`LIMIT_CHECK_MASK`]` + 1` global ticks.
    pub(crate) fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// A context draining the same budget pool with a fresh cancellation scope.  The
    /// slow-path limits carry over: a deadline spans all groups of a fan-out.
    pub(crate) fn fork(&self) -> Ctx {
        Ctx {
            budget: Arc::clone(&self.budget),
            cancel: AtomicBool::new(false),
            limits: self.limits.clone(),
        }
    }

    /// Unspent budget units, for writing back into a legacy [`crate::common::BudgetCounter`].
    pub(crate) fn budget_remaining(&self) -> u64 {
        self.budget.remaining()
    }

    /// Budget units spent so far (relaxed snapshot; see [`SharedBudget::spent`]).
    fn spent(&self) -> u64 {
        self.budget.spent()
    }

    /// Charge one unit and poll for cancellation; the wall-clock deadline, the
    /// external [`CancelToken`] and the fault plan are polled on the amortized slow
    /// path only (every [`LIMIT_CHECK_MASK`]` + 1` global ticks — the shared budget's
    /// unique spent-counts make that exactly one poll per window across all workers).
    fn tick(&self) -> Result<(), Stop> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(Stop::Cancelled);
        }
        let spent = self
            .budget
            .tick()
            .map_err(|_| Stop::Fail(DecisionError::BudgetExceeded))?;
        if spent & LIMIT_CHECK_MASK == 0 && !self.limits.is_empty() {
            self.limits.check(spent).map_err(Stop::Fail)?;
        }
        Ok(())
    }
}

/// A search tree the engine can drive: breadth-first expansion for the static
/// scheduler's frontier phase, depth-first completion for the workers of either
/// scheduler.
pub(crate) trait TreeSearch: Sync {
    /// A search node: owns its constraint store / assignment, independent of siblings.
    type Node: Send;

    /// Expand `node` one level, pushing children onto `out`.  Returns `Ok(true)` iff the
    /// node is an accepting leaf (children are then irrelevant).
    fn expand(&self, node: Self::Node, out: &mut Vec<Self::Node>, ctx: &Ctx) -> Result<bool, Stop>;

    /// Solve the subtree rooted at `node` to completion.
    fn dfs(&self, node: Self::Node, ctx: &Ctx) -> Result<bool, Stop>;

    /// [`TreeSearch::dfs`] with cooperative subtree re-splitting: while solving the
    /// subtree, poll `shed` and — when thieves are starving — publish unexplored
    /// sibling subtrees through [`Shed::offer`] instead of keeping them implicit on
    /// the call stack.  Answers must equal `dfs`'s exactly; shedding only moves
    /// subtrees, it never changes the explored set or the budget ticks they charge.
    /// The default never sheds (sound, but starves thieves — the concrete searches
    /// below all override it).
    fn dfs_shed(
        &self,
        node: Self::Node,
        ctx: &Ctx,
        shed: &dyn Shed<Self::Node>,
    ) -> Result<bool, Stop> {
        let _ = shed;
        self.dfs(node, ctx)
    }
}

/// The work-shedding half of the stealing protocol, handed to [`TreeSearch::dfs_shed`].
///
/// `wants_work` is a relaxed load (cheap enough to poll at every node); `offer` hands
/// split-off subtree roots to the scheduler, which queues them on the shedding worker's
/// own deque — thieves then steal them FIFO, shallowest (largest) first.
pub(crate) trait Shed<N>: Sync {
    /// Is some worker starving (or a forced-split fault pending)?
    fn wants_work(&self) -> bool;
    /// Publish split-off subtrees for idle workers to steal.  `nodes` must be fully
    /// independent of the caller's remaining local state (own store clone each).
    fn offer(&self, nodes: Vec<N>);
}

/// Scheduler observability counters, accumulated with relaxed atomics so the hot paths
/// pay one `fetch_add` per *event* (steal, re-split, idle poll, subtree completion),
/// never per node.
#[derive(Debug, Default)]
pub(crate) struct EngineStatsCounters {
    steals_attempted: AtomicU64,
    steals_succeeded: AtomicU64,
    resplits: AtomicU64,
    idle_polls: AtomicU64,
    peak_queue: AtomicU64,
    busy_total_ns: AtomicU64,
    busy_max_ns: AtomicU64,
}

impl EngineStatsCounters {
    fn note_queue_len(&self, len: usize) {
        self.peak_queue.fetch_max(len as u64, Ordering::Relaxed);
    }

    /// Record one worker's total busy time over a parallel search.
    fn note_worker_busy(&self, ns: u64) {
        self.busy_total_ns.fetch_add(ns, Ordering::Relaxed);
        self.busy_max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Cumulative on-CPU nanoseconds of the calling thread, from the Linux scheduler's
/// own accounting.  `None` off Linux (or with schedstats compiled out) — the busy
/// clock then falls back to wall time, which is just as accurate whenever the host
/// is not oversubscribed.
fn thread_runtime_ns() -> Option<u64> {
    let raw = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    raw.split_whitespace().next()?.parse().ok()
}

/// A per-worker busy clock charging only the time spent solving subtrees (steal hunts
/// and idle polls are overhead, not load).  Prefers true on-CPU time so the
/// load-balance counters stay meaningful on timeshared or single-core hosts, where a
/// subtree's wall span includes other workers' slices.
struct BusyClock {
    cpu_start: Option<u64>,
    wall_start: Instant,
}

impl BusyClock {
    fn start() -> Self {
        BusyClock {
            cpu_start: thread_runtime_ns(),
            wall_start: Instant::now(),
        }
    }

    fn elapsed_ns(&self) -> u64 {
        match (self.cpu_start, thread_runtime_ns()) {
            (Some(start), Some(now)) => now.saturating_sub(start),
            _ => u64::try_from(self.wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }
}

/// A point-in-time snapshot of the work-stealing scheduler's counters
/// ([`Engine::stats`]), accumulated across every search the engine has driven.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Steal hunts started by dry workers (each hunt probes every victim once).
    pub steals_attempted: u64,
    /// Hunts that came back with at least one node.
    pub steals_succeeded: u64,
    /// Subtree re-splits: a busy worker re-expanded a live checkpoint and published
    /// the unexplored sibling subtrees for thieves.
    pub resplits: u64,
    /// Idle polls: a dry worker found every deque empty and yielded (work was still
    /// in flight, so it could not exit).
    pub idle_polls: u64,
    /// Deepest any worker deque ever got (a proxy for the static scheduler's frontier
    /// depth: how much splittable work was exposed at the busiest moment).
    pub peak_queue: u64,
    /// Nanoseconds all workers together spent solving subtrees (on-CPU time where the
    /// host exposes it, wall time otherwise), across every parallel search driven.
    pub busy_total_ns: u64,
    /// The busiest single worker's subtree-solving nanoseconds in any one search — the
    /// schedule's critical path.  On hardware with a free core per worker, a parallel
    /// search's wall clock converges to this; `busy_total_ns / busy_max_ns` is the
    /// scheduler's achievable speedup independent of how loaded the measuring host is.
    pub busy_max_ns: u64,
}

/// Drive a [`TreeSearch`] against an externally owned context, so several searches can
/// share one budget pool (the legacy `search.rs` entry points thread a single
/// [`crate::common::BudgetCounter`] through consecutive searches this way).  Dispatches
/// on the configuration: sequential, work-stealing (the default parallel path) or the
/// static frontier split ([`EngineConfig::without_work_stealing`]).
pub(crate) fn drive_ctx<S: TreeSearch>(
    search: &S,
    root: S::Node,
    cfg: &EngineConfig,
    ctx: &Ctx,
    stats: &EngineStatsCounters,
) -> Result<bool, DecisionError> {
    if cfg.threads <= 1 {
        return match search.dfs(root, ctx) {
            Ok(found) => Ok(found),
            Err(Stop::Fail(e)) => Err(e),
            // The internal first-witness flag is only set by parallel workers; if that
            // invariant ever drifts, report a cooperative stop instead of crashing.
            Err(Stop::Cancelled) => Err(DecisionError::Cancelled),
        };
    }
    if cfg.work_stealing {
        return drive_stealing(search, root, cfg, ctx, stats);
    }
    drive_static(search, root, cfg, ctx, stats)
}

/// The PR 1–7 static scheduler, kept verbatim behind
/// [`EngineConfig::without_work_stealing`] as the equivalence oracle for the stealing
/// path: carve a breadth-first frontier once, then drain it from one shared queue.
/// (Verbatim up to the load-balance bookkeeping: its workers feed the same per-worker
/// busy clock as the stealing workers, so the two schedules can be compared.)
fn drive_static<S: TreeSearch>(
    search: &S,
    root: S::Node,
    cfg: &EngineConfig,
    ctx: &Ctx,
    stats: &EngineStatsCounters,
) -> Result<bool, DecisionError> {
    // Phase 1: breadth-first expansion until the frontier can feed every worker.
    let target = cfg.threads * cfg.frontier_per_thread.max(1);
    let mut frontier: VecDeque<S::Node> = VecDeque::from_iter([root]);
    let mut children = Vec::new();
    while frontier.len() < target {
        let Some(node) = frontier.pop_front() else {
            // The whole tree was expanded without meeting an accepting leaf.
            return Ok(false);
        };
        children.clear();
        match search.expand(node, &mut children, ctx) {
            Ok(true) => return Ok(true),
            Ok(false) => frontier.extend(children.drain(..)),
            Err(Stop::Fail(e)) => return Err(e),
            // See the single-threaded arm: cancellation starts with the workers.
            Err(Stop::Cancelled) => return Err(DecisionError::Cancelled),
        }
    }

    // Phase 2: workers drain the frontier; LIFO pop keeps sibling subtrees together.
    let queue: Mutex<VecDeque<S::Node>> = Mutex::new(frontier);
    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|_| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut busy_ns = 0u64;
                    let outcome = loop {
                        let node = lock_unpoisoned(queue).pop_back();
                        let Some(node) = node else {
                            break Outcome::Exhausted;
                        };
                        // The scoped-worker isolation boundary: a panicking search
                        // fails this request only.  The frontier lock is never held
                        // across `dfs`, so nothing can be poisoned; siblings are
                        // cancelled — with one subtree unexplored no definite answer
                        // is possible.
                        let clock = BusyClock::start();
                        let result = catch_unwind(AssertUnwindSafe(|| search.dfs(node, ctx)));
                        busy_ns += clock.elapsed_ns();
                        match result {
                            Ok(Ok(true)) => {
                                ctx.cancel.store(true, Ordering::Relaxed);
                                break Outcome::Found;
                            }
                            Ok(Ok(false)) => continue,
                            Ok(Err(Stop::Fail(e))) => break Outcome::Stopped(e),
                            Ok(Err(Stop::Cancelled)) => break Outcome::Cancelled,
                            Err(payload) => {
                                ctx.cancel.store(true, Ordering::Relaxed);
                                break Outcome::Panicked(panic_message(payload.as_ref()));
                            }
                        }
                    };
                    stats.note_worker_busy(busy_ns);
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| Outcome::Panicked(panic_message(payload.as_ref())))
            })
            .collect()
    });

    aggregate_outcomes(outcomes)
}

/// How one worker of a parallel search finished.
#[derive(PartialEq)]
enum Outcome {
    Found,
    Exhausted,
    Stopped(DecisionError),
    Cancelled,
    Panicked(String),
}

/// Merge per-worker outcomes into the search verdict.  A found witness is definite and
/// beats every failure; a panic means an unexplored subtree, which taints any
/// "exhausted" claim; among the cooperative stops, deadline/cancellation name the
/// request-level cause more precisely than the default budget exhaustion.  Shared by
/// both schedulers so the termination protocol cannot drift between them.
fn aggregate_outcomes(outcomes: Vec<Outcome>) -> Result<bool, DecisionError> {
    let mut panicked: Option<String> = None;
    let mut stopped: Option<DecisionError> = None;
    for outcome in outcomes {
        match outcome {
            Outcome::Found => return Ok(true),
            Outcome::Panicked(msg) => {
                if panicked.is_none() {
                    panicked = Some(msg);
                }
            }
            Outcome::Stopped(e) => {
                if matches!(stopped, None | Some(DecisionError::BudgetExceeded)) {
                    stopped = Some(e);
                }
            }
            Outcome::Exhausted | Outcome::Cancelled => {}
        }
    }
    if let Some(msg) = panicked {
        return Err(DecisionError::WorkerPanicked(msg));
    }
    if let Some(e) = stopped {
        return Err(e);
    }
    Ok(false)
}

/// A tiny splitmix64 stream for victim selection: statistically fine for load
/// balancing, deterministic per (seed, worker) so runs are reproducible, and free of
/// any crates.io dependency.
struct StealRng(u64);

impl StealRng {
    fn new(seed: u64, worker: u64) -> Self {
        StealRng(seed ^ (worker + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One worker's deque plus a lock-free mirror of its length, so the re-split throttle
/// in [`WorkerShed::wants_work`] — polled at every search node — never takes the lock.
struct WorkerQueue<N> {
    nodes: Mutex<VecDeque<N>>,
    /// Kept equal to `nodes.len()` by every push/pop/drain (all of which hold the
    /// lock); readers tolerate the relaxed staleness.
    len: AtomicU64,
}

impl<N> WorkerQueue<N> {
    fn empty() -> Self {
        WorkerQueue {
            nodes: Mutex::new(VecDeque::new()),
            len: AtomicU64::new(0),
        }
    }
}

/// Shared state of one work-stealing search: the per-worker deques plus the
/// termination and starvation counters.
struct Scheduler<'a, N> {
    /// One deque per worker.  The owner pushes and pops at the back (LIFO keeps it on
    /// its newest, deepest subtree); thieves take from the front (FIFO: the shallowest
    /// checkpoints are the biggest subtrees).
    deques: Vec<WorkerQueue<N>>,
    /// Queued nodes plus in-flight subtrees.  Zero means the whole tree is done:
    /// incremented *before* a node becomes visible in any deque, decremented after
    /// its subtree is fully solved, so a dry spell with work still in flight can
    /// never be mistaken for exhaustion.
    pending: AtomicU64,
    /// Workers currently hunting for work.  Non-zero is the re-split signal the
    /// depth-first recursions poll through [`Shed::wants_work`].
    hungry: AtomicU64,
    stats: &'a EngineStatsCounters,
    faults: Option<Arc<FaultPlan>>,
    /// One-shot latches for the injected steal/split faults.
    steal_fault_fired: AtomicBool,
    split_fault_fired: AtomicBool,
}

impl<N: Send> Scheduler<'_, N> {
    /// Should a forced-steal fault fire now?  Latches so it fires at most once.
    fn forced_steal(&self, spent: u64) -> bool {
        let Some(faults) = &self.faults else {
            return false;
        };
        faults.wants_steal(spent)
            && self
                .steal_fault_fired
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }

    /// Should a forced-split fault fire now?  Latches like [`Scheduler::forced_steal`].
    fn forced_split(&self, spent: u64) -> bool {
        let Some(faults) = &self.faults else {
            return false;
        };
        faults.wants_split(spent)
            && self
                .split_fault_fired
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
    }

    /// One steal hunt: probe every other worker once, in an order derived from the
    /// seeded RNG, and take the front (oldest, shallowest) half of the first non-empty
    /// deque found — the remainder of the haul queues on the thief's own deque and the
    /// first stolen node is returned for immediate processing.
    fn steal(&self, thief: usize, rng: &mut StealRng) -> Option<N> {
        self.stats.steals_attempted.fetch_add(1, Ordering::Relaxed);
        let n = self.deques.len();
        let start = (rng.next() % n as u64) as usize;
        for i in 0..n {
            let victim = (start + i) % n;
            if victim == thief {
                continue;
            }
            let mut haul: VecDeque<N> = {
                let mut vq = lock_unpoisoned(&self.deques[victim].nodes);
                if vq.is_empty() {
                    continue;
                }
                let take = vq.len().div_ceil(2);
                let haul = vq.drain(..take).collect();
                self.deques[victim]
                    .len
                    .store(vq.len() as u64, Ordering::Relaxed);
                haul
            };
            let first = haul.pop_front().expect("took at least one node");
            if !haul.is_empty() {
                let mut mine = lock_unpoisoned(&self.deques[thief].nodes);
                mine.extend(haul);
                self.deques[thief]
                    .len
                    .store(mine.len() as u64, Ordering::Relaxed);
                self.stats.note_queue_len(mine.len());
            }
            self.stats.steals_succeeded.fetch_add(1, Ordering::Relaxed);
            return Some(first);
        }
        None
    }
}

/// The per-worker face of the scheduler handed to [`TreeSearch::dfs_shed`].
struct WorkerShed<'a, 'b, N> {
    sched: &'a Scheduler<'b, N>,
    worker: usize,
    ctx: &'a Ctx,
}

impl<N: Send> Shed<N> for WorkerShed<'_, '_, N> {
    /// Re-split only while thieves are starving *and* the worker's own deque does not
    /// already hold enough queued subtrees to feed them: without the second condition
    /// a lone busy worker re-splits at every poll for as long as anyone is hungry,
    /// paying a store clone per published subtree that nobody is fast enough to
    /// claim.  Both loads are relaxed — a stale read only shifts the split by a node.
    fn wants_work(&self) -> bool {
        if self.sched.forced_split(self.ctx.spent()) {
            return true;
        }
        let hungry = self.sched.hungry.load(Ordering::Relaxed);
        hungry > 0 && self.sched.deques[self.worker].len.load(Ordering::Relaxed) < hungry
    }

    fn offer(&self, nodes: Vec<N>) {
        self.sched.stats.resplits.fetch_add(1, Ordering::Relaxed);
        // Count the nodes before publishing them (see `Scheduler::pending`).
        self.sched
            .pending
            .fetch_add(nodes.len() as u64, Ordering::Release);
        let own = &self.sched.deques[self.worker];
        let mut deque = lock_unpoisoned(&own.nodes);
        deque.extend(nodes);
        own.len.store(deque.len() as u64, Ordering::Relaxed);
        self.sched.stats.note_queue_len(deque.len());
    }
}

/// The dynamic work-stealing scheduler (the parallel default).  The root seeds worker
/// 0's deque; every worker then loops pop-own-back → steal → idle-poll, solving each
/// acquired subtree depth-first with [`TreeSearch::dfs_shed`] so a starving thief can
/// pull the victim's shallowest unexplored checkpoints out of its recursion.  The
/// first-witness/termination protocol is the static scheduler's exactly: witnesses
/// flip the shared cancel flag, panics are caught per worker, and the per-worker
/// outcomes merge through [`aggregate_outcomes`].
fn drive_stealing<S: TreeSearch>(
    search: &S,
    root: S::Node,
    cfg: &EngineConfig,
    ctx: &Ctx,
    stats: &EngineStatsCounters,
) -> Result<bool, DecisionError> {
    let sched: Scheduler<'_, S::Node> = Scheduler {
        deques: (0..cfg.threads).map(|_| WorkerQueue::empty()).collect(),
        pending: AtomicU64::new(1),
        hungry: AtomicU64::new(0),
        stats,
        faults: cfg.faults.clone(),
        steal_fault_fired: AtomicBool::new(false),
        split_fault_fired: AtomicBool::new(false),
    };
    lock_unpoisoned(&sched.deques[0].nodes).push_back(root);
    sched.deques[0].len.store(1, Ordering::Relaxed);
    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|w| {
                let sched = &sched;
                scope.spawn(move || stealing_worker(search, sched, w, cfg, ctx))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| Outcome::Panicked(panic_message(payload.as_ref())))
            })
            .collect()
    });
    aggregate_outcomes(outcomes)
}

/// One worker of the stealing scheduler.
fn stealing_worker<S: TreeSearch>(
    search: &S,
    sched: &Scheduler<'_, S::Node>,
    worker: usize,
    cfg: &EngineConfig,
    ctx: &Ctx,
) -> Outcome {
    let mut busy_ns = 0u64;
    let outcome = stealing_worker_run(search, sched, worker, cfg, ctx, &mut busy_ns);
    sched.stats.note_worker_busy(busy_ns);
    outcome
}

/// The worker loop of [`stealing_worker`]; `busy_ns` accumulates the time spent inside
/// `dfs_shed` (solving subtrees), which is the worker's contribution to the schedule's
/// load-balance counters — steal hunts and idle polls are overhead, not load.
fn stealing_worker_run<S: TreeSearch>(
    search: &S,
    sched: &Scheduler<'_, S::Node>,
    worker: usize,
    cfg: &EngineConfig,
    ctx: &Ctx,
    busy_ns: &mut u64,
) -> Outcome {
    let mut rng = StealRng::new(cfg.steal_seed, worker as u64);
    let shed = WorkerShed { sched, worker, ctx };
    // While `starving` the worker is counted in `sched.hungry`, which is what makes
    // busy workers start shedding; the flag clears as soon as a node is acquired.
    let mut starving = false;
    let leave = |starving: bool, outcome: Outcome| {
        if starving {
            sched.hungry.fetch_sub(1, Ordering::Relaxed);
        }
        outcome
    };
    loop {
        if ctx.cancel.load(Ordering::Relaxed) {
            return leave(starving, Outcome::Cancelled);
        }
        // Injected fault: raid a victim before touching the own deque, so the steal
        // path is exercised even when local work never runs out.
        let forced = sched
            .forced_steal(ctx.spent())
            .then(|| sched.steal(worker, &mut rng))
            .flatten();
        let node = forced
            .or_else(|| {
                let own = &sched.deques[worker];
                let mut deque = lock_unpoisoned(&own.nodes);
                let node = deque.pop_back();
                own.len.store(deque.len() as u64, Ordering::Relaxed);
                node
            })
            .or_else(|| sched.steal(worker, &mut rng));
        let Some(node) = node else {
            if sched.pending.load(Ordering::Acquire) == 0 {
                return leave(starving, Outcome::Exhausted);
            }
            if !starving {
                sched.hungry.fetch_add(1, Ordering::Relaxed);
                starving = true;
            }
            sched.stats.idle_polls.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
            continue;
        };
        if starving {
            sched.hungry.fetch_sub(1, Ordering::Relaxed);
            starving = false;
        }
        // The same isolation boundary as the static scheduler: a panicking search
        // fails this request only, and no deque lock is ever held across `dfs_shed`.
        let clock = BusyClock::start();
        let result = catch_unwind(AssertUnwindSafe(|| search.dfs_shed(node, ctx, &shed)));
        *busy_ns += clock.elapsed_ns();
        sched.pending.fetch_sub(1, Ordering::Release);
        match result {
            Ok(Ok(true)) => {
                ctx.cancel.store(true, Ordering::Relaxed);
                return Outcome::Found;
            }
            Ok(Ok(false)) => continue,
            Ok(Err(Stop::Fail(e))) => return Outcome::Stopped(e),
            Ok(Err(Stop::Cancelled)) => return Outcome::Cancelled,
            Err(payload) => {
                ctx.cancel.store(true, Ordering::Relaxed);
                return Outcome::Panicked(panic_message(payload.as_ref()));
            }
        }
    }
}

/// Assert that the row instantiates to exactly `fact` and that its local condition holds.
/// The fact arrives pre-interned (front-door invariant), so this loop moves ids only.
fn assert_row_produces(
    store: &mut ConstraintSet,
    row_terms: &[Term],
    cond: &Conjunction,
    fact: &[Sym],
) -> bool {
    if !store.assert_conjunction(cond) {
        return false;
    }
    for (&term, &value) in row_terms.iter().zip(fact.iter()) {
        if !store.assert_eq(term, Term::Const(value)) {
            return false;
        }
    }
    true
}

/// Intern one complete fact through the database's symbol table — the front door where
/// external constants become engine ids.
pub(crate) fn intern_fact(db: &CDatabase, fact: &Tuple) -> Vec<Sym> {
    fact.iter().map(|c| db.intern(c)).collect()
}

/// Split an instance by the database's shard groups: `parts[g]` holds exactly the
/// relations of `facts` that live in group `g`.  `None` when a populated relation is
/// unknown to the database or arity-mismatched — the per-shard callers map that to the
/// same answer the joint search gives for an incompatible schema.
pub(crate) fn split_by_group(db: &CDatabase, facts: &Instance) -> Option<Vec<Instance>> {
    let group_of = db.shard_group_index();
    let mut parts = vec![Instance::new(); db.shard_groups().len()];
    for (name, rel) in facts.iter() {
        if rel.is_empty() {
            continue;
        }
        let pos = db.table_position(name)?;
        if db.tables()[pos].arity() != rel.arity() {
            return None;
        }
        parts[group_of[pos]].insert_relation(name.clone(), rel.clone());
    }
    Some(parts)
}

/// An instance holding exactly one fact, for the single-fact entry points.
pub(crate) fn single_fact_instance(relation: &str, fact: &Tuple) -> Instance {
    let mut single = Instance::new();
    let mut rel = pw_relational::Relation::empty(fact.arity());
    rel.insert(fact.clone()).expect("arity matches");
    single.insert_relation(relation.to_owned(), rel);
    single
}

// ---------------------------------------------------------------------------------------
// The engine proper.
// ---------------------------------------------------------------------------------------

/// A decision engine: a thread/budget configuration plus the caches that amortize repeated
/// work — the hash-consed condition-satisfiability cache and the per-database base stores.
///
/// Transient engines are created under the hood by the `decide_with` entry points of the
/// problem modules; the batched front door ([`crate::batch::decide_all`]) keeps one engine
/// for the whole batch so every request on the same database reuses the same preprocessing.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
    sat_cache: SatCache,
    /// Base stores (all global conditions asserted) memoized per database; `None` records
    /// that the globals are jointly unsatisfiable, i.e. `rep(db) = ∅`.  Keyed by the
    /// database *value* (structural hash + equality), so cloned databases share an entry
    /// and distinct databases can never collide.
    base_stores: Mutex<HashMap<CDatabase, Option<ConstraintSet>>>,
    /// The decision memo: per-group verdicts keyed by [`MemoKey`].  The group database
    /// hashes as its cached structural fingerprint and compares structurally, so a
    /// shard group carried across a delta ([`pw_core::CDatabase::apply`]) replays its
    /// verdict while a rebuilt (dirty) group misses and is re-searched.  Only definite
    /// answers are stored — a budget-exceeded search is never memoized.  Certified
    /// decides store their evidence beside the verdict ([`MemoEntry`]), so a replayed
    /// group answer stays auditable.  Bounded by [`EngineConfig::memo_capacity`] with
    /// second-chance eviction ([`MemoTable`]).
    decision_memo: Mutex<MemoTable>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    /// Work-stealing scheduler counters, accumulated across every search this engine
    /// drives; snapshot via [`Engine::stats`].
    stats: EngineStatsCounters,
}

/// The bounded decision memo: entries plus the clock (second-chance) eviction state.
///
/// Eviction policy: every insert that pushes `entries` past
/// [`EngineConfig::memo_capacity`] sweeps the clock hand — a referenced entry (hit
/// since the hand last passed) gets its bit cleared and one more lap, an unreferenced
/// one evicts, certificate and all.  While `pins > 0` (a
/// [`crate::batch::Session::redecide_all`] replay in flight) nothing evicts; the
/// unpin re-enforces the bound.  Correctness does not depend on the policy at all:
/// an evicted entry is simply recomputed on the next miss, and only definite answers
/// are ever stored, so the recomputed verdict is identical.
#[derive(Debug, Default)]
struct MemoTable {
    entries: HashMap<MemoKey, MemoEntry>,
    /// The clock hand's queue: keys in insertion/second-chance order.  May hold stale
    /// keys after [`Engine::retire_database`] sweeps `entries`; the eviction loop
    /// skips them.
    clock: VecDeque<MemoKey>,
    evictions: u64,
    pins: u32,
}

/// A decision-memo key.  Every component is held *structurally* — the request instance
/// and the optional right-hand database included — so two different questions can never
/// collide into one entry (the same "distinct keys can never collide" rule the
/// base-store cache follows); hashing is still one fingerprint word per database plus
/// the instance walk.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct MemoKey {
    op: MemoOp,
    /// The (group) database the primitive is asked of.
    db: CDatabase,
    /// The request's slice of the instance (empty for [`MemoOp::Containment`]).
    request: Instance,
    /// The right-hand group database of a [`MemoOp::Containment`] question.
    rhs: Option<CDatabase>,
}

/// A memoized per-group verdict, with the evidence a certified decide extracted for it.
/// Uncertified decides store `certificate: None`; a later certified decide of the same
/// key upgrades the entry in place (the verdict is deterministic, so the answer can
/// never disagree).
#[derive(Clone, Debug)]
struct MemoEntry {
    answer: bool,
    certificate: Option<Certificate>,
    /// Second-chance bit: set on every memo hit, cleared when the clock hand passes.
    referenced: bool,
}

/// The per-group decision primitives the engine memoizes.  Each is a deterministic
/// function of one shard-group sub-database and a normalized request, which is what
/// makes the verdict replayable after a delta leaves the group untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoOp {
    /// Group-local membership: is the request's slice of the instance in `rep(group)`?
    Member,
    /// Group-local covering (possibility): does some world of the group contain the
    /// request's facts?
    Covering,
    /// Group-local certainty complement: does some world of the group miss one of the
    /// request's facts?
    MissingAny,
    /// Group-local uniqueness complement: does some row of the group escape the
    /// request's instance in some world?
    Escape,
    /// Group-pair containment: is the left group's representation contained in the
    /// right group's?  The key's `rhs` holds the right group.
    Containment,
}

/// Hit/miss counters of the decision memo, for tests and the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Per-group verdicts replayed from the memo (no search ran).
    pub hits: u64,
    /// Per-group verdicts computed by a search (and stored, when definite).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Entries evicted by the capacity bound ([`EngineConfig::memo_capacity`]) since
    /// the engine was built.
    pub evictions: u64,
}

impl Engine {
    /// An engine with the given configuration and empty caches.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            sat_cache: SatCache::new(),
            base_stores: Mutex::new(HashMap::new()),
            decision_memo: Mutex::new(MemoTable::default()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            stats: EngineStatsCounters::default(),
        }
    }

    /// A snapshot of the work-stealing scheduler's counters, accumulated across every
    /// search this engine has driven (sibling of [`Engine::memo_stats`]).  All zeros
    /// under the sequential or static-split configurations.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            steals_attempted: self.stats.steals_attempted.load(Ordering::Relaxed),
            steals_succeeded: self.stats.steals_succeeded.load(Ordering::Relaxed),
            resplits: self.stats.resplits.load(Ordering::Relaxed),
            idle_polls: self.stats.idle_polls.load(Ordering::Relaxed),
            peak_queue: self.stats.peak_queue.load(Ordering::Relaxed),
            busy_total_ns: self.stats.busy_total_ns.load(Ordering::Relaxed),
            busy_max_ns: self.stats.busy_max_ns.load(Ordering::Relaxed),
        }
    }

    /// Replay the verdict for `(op, db, request, rhs)` from the decision memo, or run
    /// `compute` and store its (definite) answer.  Budget-exceeded results are returned
    /// but never cached — a later call with more budget must be able to succeed.
    pub(crate) fn memo_decide(
        &self,
        op: MemoOp,
        db: &CDatabase,
        request: &Instance,
        rhs: Option<&CDatabase>,
        compute: impl FnOnce() -> Result<bool, DecisionError>,
    ) -> Result<bool, DecisionError> {
        let key = MemoKey {
            op,
            db: db.clone(),
            request: request.clone(),
            rhs: rhs.cloned(),
        };
        {
            let mut memo = lock_unpoisoned(&self.decision_memo);
            if let Some(entry) = memo.entries.get_mut(&key) {
                entry.referenced = true;
                self.memo_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.answer);
            }
        }
        // Compute outside the lock: a slow group search must not block unrelated
        // lookups, and — the per-group isolation boundary — a panicking group search
        // can poison nothing here.  The panic becomes this group's `WorkerPanicked`;
        // sibling groups and requests proceed.  A concurrent duplicate compute is
        // benign (the verdict is deterministic, first insert wins).
        let verdict = catch_unwind(AssertUnwindSafe(compute))
            .unwrap_or_else(|p| Err(DecisionError::WorkerPanicked(panic_message(p.as_ref()))))?;
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let mut memo = lock_unpoisoned(&self.decision_memo);
        if !memo.entries.contains_key(&key) {
            memo.entries.insert(
                key.clone(),
                MemoEntry {
                    answer: verdict,
                    certificate: None,
                    referenced: false,
                },
            );
            memo.clock.push_back(key);
            self.enforce_memo_capacity(&mut memo);
        }
        Ok(verdict)
    }

    /// [`Engine::memo_decide`] for certified decides: replay both the verdict *and* its
    /// evidence from the memo, or run `compute` and store its result.  An entry written
    /// by an uncertified decide (no evidence) counts as a miss — the certified search
    /// runs and upgrades the entry in place, so subsequent replays stay auditable.
    /// Budget-exceeded results are never cached.
    pub(crate) fn memo_certified(
        &self,
        op: MemoOp,
        db: &CDatabase,
        request: &Instance,
        rhs: Option<&CDatabase>,
        compute: impl FnOnce() -> Result<(bool, Option<Certificate>), DecisionError>,
    ) -> Result<(bool, Option<Certificate>), DecisionError> {
        let key = MemoKey {
            op,
            db: db.clone(),
            request: request.clone(),
            rhs: rhs.cloned(),
        };
        {
            let mut memo = lock_unpoisoned(&self.decision_memo);
            if let Some(entry) = memo.entries.get_mut(&key) {
                if entry.certificate.is_some() {
                    entry.referenced = true;
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry.answer, entry.certificate.clone()));
                }
            }
        }
        // Same out-of-lock compute + per-group panic boundary as `memo_decide`.
        let result = catch_unwind(AssertUnwindSafe(compute))
            .unwrap_or_else(|p| Err(DecisionError::WorkerPanicked(panic_message(p.as_ref()))));
        let (answer, certificate) = result?;
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let mut memo = lock_unpoisoned(&self.decision_memo);
        let upgrade = memo.entries.contains_key(&key);
        memo.entries.insert(
            key.clone(),
            MemoEntry {
                answer,
                certificate: certificate.clone(),
                referenced: false,
            },
        );
        if !upgrade {
            memo.clock.push_back(key);
            self.enforce_memo_capacity(&mut memo);
        }
        Ok((answer, certificate))
    }

    /// The capacity the memo is held to right now: the configured bound, or 1 under an
    /// injected eviction storm ([`FaultPlan::eviction_storm`]).
    fn effective_memo_capacity(&self) -> Option<usize> {
        if self.cfg.faults.as_ref().is_some_and(|f| f.eviction_storm) {
            return Some(1);
        }
        self.cfg.memo_capacity.map(|c| c.max(1))
    }

    /// The second-chance sweep (see [`MemoTable`]).  No-op while the memo is pinned or
    /// unbounded.
    fn enforce_memo_capacity(&self, memo: &mut MemoTable) {
        let Some(cap) = self.effective_memo_capacity() else {
            return;
        };
        if memo.pins > 0 {
            return;
        }
        // After one full lap every survivor's referenced bit is cleared, so the hand
        // finds an eviction victim within 2·len steps — the loop is bounded.
        let mut steps = memo.clock.len().saturating_mul(2);
        while memo.entries.len() > cap && steps > 0 {
            steps -= 1;
            let Some(key) = memo.clock.pop_front() else {
                break;
            };
            match memo.entries.get_mut(&key) {
                // Stale hand position: the entry was retired with its database.
                None => continue,
                Some(entry) if entry.referenced => {
                    entry.referenced = false;
                    memo.clock.push_back(key);
                }
                Some(_) => {
                    memo.entries.remove(&key);
                    memo.evictions += 1;
                }
            }
        }
    }

    /// Pin the decision memo: nothing evicts while any pin is alive.  Held by
    /// [`crate::batch::Session::redecide_all`] around the replay batch, so eviction
    /// can never race an in-flight replay; dropping the last pin re-enforces the
    /// capacity bound.
    pub(crate) fn pin_memo(&self) -> MemoPin<'_> {
        lock_unpoisoned(&self.decision_memo).pins += 1;
        MemoPin { engine: self }
    }

    /// Current decision-memo counters.
    pub fn memo_stats(&self) -> MemoStats {
        let memo = lock_unpoisoned(&self.decision_memo);
        MemoStats {
            hits: self.memo_hits.load(Ordering::Relaxed),
            misses: self.memo_misses.load(Ordering::Relaxed),
            entries: memo.entries.len(),
            evictions: memo.evictions,
        }
    }

    /// Drop every cache entry keyed by `db` — the base store and all memoized
    /// verdicts.  A long-lived engine serving a mutating database calls this (via
    /// `batch`'s re-decision front door) for the previous database value and for the
    /// dissolved shard groups after a delta, so retired versions do not accumulate.
    pub fn retire_database(&self, db: &CDatabase) {
        lock_unpoisoned(&self.base_stores).remove(db);
        let mut memo = lock_unpoisoned(&self.decision_memo);
        memo.entries
            .retain(|key, _| key.db != *db && key.rhs.as_ref() != Some(db));
        let MemoTable { entries, clock, .. } = &mut *memo;
        clock.retain(|key| entries.contains_key(key));
    }

    /// Purge the hash-consed condition-satisfiability entries that belonged to
    /// `retired` and are **not** shared with `live`.  The complement of
    /// [`Engine::retire_database`] for the [`SatCache`]: conditions are shared across
    /// database versions (most rows survive a small delta), so a retire must be
    /// keep-aware — dropping everything `retired` ever interned would also purge the
    /// live database's entries.  Called by [`crate::batch::Session::redecide_all`]
    /// when a delta replaces the database value.
    pub fn retire_conditions(&self, retired: &CDatabase, live: &CDatabase) {
        fn conditions(db: &CDatabase) -> HashSet<Conjunction> {
            let mut set = HashSet::new();
            for table in db.tables() {
                set.insert(table.global_condition().clone());
                for row in table.tuples() {
                    set.insert(row.condition.clone());
                }
            }
            set
        }
        let mut dead = conditions(retired);
        for cond in conditions(live) {
            dead.remove(&cond);
        }
        if dead.is_empty() {
            return;
        }
        self.sat_cache.retain(|cond| !dead.contains(cond));
    }

    /// Replace the per-request budget.  Crate-internal: the retry front door
    /// ([`crate::batch::Session::decide_all_with_retry`]) escalates it between passes —
    /// sound because budget-exceeded outcomes are never memoized, so no cached verdict
    /// can disagree with a bigger-budget re-run.
    pub(crate) fn set_budget(&mut self, budget: Budget) {
        self.cfg.budget = budget;
    }

    /// Replace the per-search wall-clock deadline.  Crate-internal: the deadline-scoped
    /// batch front door ([`crate::batch::Session::decide_all_within`]) installs a
    /// per-batch deadline and restores the configured one afterwards — sound because
    /// the deadline resolves to an absolute instant at each search's start, and
    /// deadline-exceeded outcomes are never memoized.
    pub(crate) fn set_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.cfg.deadline = deadline;
    }

    /// A fresh search context for one request: the configured budget plus the
    /// slow-path limits, with the deadline resolved to an absolute instant *now*.
    pub(crate) fn ctx(&self) -> Ctx {
        Ctx::new(self.cfg.budget).with_limits(self.cfg.limits())
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The shared condition-satisfiability cache.
    pub fn sat_cache(&self) -> &SatCache {
        &self.sat_cache
    }

    /// Are the global conditions of `db` jointly satisfiable?  Memoized (both through the
    /// sat-cache, per condition, and through the base-store cache, per database); a
    /// cached database answers with a map lookup, no store clone.
    pub fn has_satisfiable_globals(&self, db: &CDatabase) -> bool {
        {
            let cache = lock_unpoisoned(&self.base_stores);
            if let Some(store) = cache.get(db) {
                return store.is_some();
            }
        }
        self.base_store(db).is_some()
    }

    /// The base constraint store of `db`: every table's global condition asserted.
    /// `None` when the globals are jointly unsatisfiable (`rep(db) = ∅`).  Construction
    /// happens once per distinct database per engine; callers get a cheap clone.
    pub fn base_store(&self, db: &CDatabase) -> Option<ConstraintSet> {
        {
            let cache = lock_unpoisoned(&self.base_stores);
            if let Some(store) = cache.get(db) {
                return store.clone();
            }
        }
        // Construct outside the lock so a slow build never blocks unrelated lookups; a
        // concurrent duplicate build is benign (first insert wins).
        // The sat-cache pre-screens each table's condition, so repeated databases with a
        // shared unsatisfiable condition are rejected without union-find work; the store
        // construction below re-asserts the satisfiable ones.
        let built = if db
            .tables()
            .iter()
            .any(|t| !self.sat_cache.is_satisfiable(t.global_condition()))
        {
            None
        } else {
            let mut store = ConstraintSet::new();
            let mut ok = true;
            for table in db.tables() {
                if !store.assert_conjunction(table.global_condition()) {
                    ok = false;
                    break;
                }
            }
            ok.then_some(store)
        };
        let mut cache = lock_unpoisoned(&self.base_stores);
        cache.entry(db.clone()).or_insert(built).clone()
    }

    // -- the three constraint searches ---------------------------------------------------

    /// Is there a valuation (satisfying the global conditions) under which every fact of
    /// `facts` is produced by some row of its relation?  Parallel counterpart of
    /// [`crate::search::exists_world_covering`].
    pub fn exists_world_covering(
        &self,
        db: &CDatabase,
        facts: &Instance,
    ) -> Result<bool, DecisionError> {
        self.covering_ctx(db, facts, &self.ctx())
    }

    pub(crate) fn covering_ctx(
        &self,
        db: &CDatabase,
        facts: &Instance,
        ctx: &Ctx,
    ) -> Result<bool, DecisionError> {
        for (name, rel) in facts.iter() {
            if rel.is_empty() {
                continue;
            }
            match db.table(name) {
                Some(t) if t.arity() == rel.arity() => {}
                _ => return Ok(false),
            }
        }
        let Some(store) = self.base_store(db) else {
            return Ok(false);
        };
        let work: Vec<(&CTable, Vec<Sym>)> = facts
            .iter()
            .flat_map(|(name, rel)| {
                let table = db.table(name);
                rel.iter()
                    .filter_map(move |fact| table.map(|t| (t, intern_fact(db, fact))))
            })
            .collect();
        let search = CoverSearch { work };
        let root = ChoiceNode {
            store,
            meta: CoverMeta {
                depth: 0,
                used: None,
            },
        };
        drive_ctx(&Choices(&search), root, &self.cfg, ctx, &self.stats)
    }

    /// Is there a valuation under which **some** fact of `facts` is produced by no row of
    /// its relation?  This is the complement question behind certainty (and half of
    /// uniqueness); the per-fact searches are independent subtrees, so a multi-fact call
    /// parallelizes across facts *and* within each fact's tree.
    ///
    /// Facts of relations the database does not have (or with the wrong arity) are missing
    /// from every world, exactly as in the sequential search.
    pub fn exists_world_missing_any_fact(
        &self,
        db: &CDatabase,
        facts: &Instance,
    ) -> Result<bool, DecisionError> {
        self.missing_any_ctx(db, facts, &self.ctx())
    }

    pub(crate) fn missing_any_ctx(
        &self,
        db: &CDatabase,
        facts: &Instance,
        ctx: &Ctx,
    ) -> Result<bool, DecisionError> {
        let mut work: Vec<(&CTable, Vec<Sym>)> = Vec::new();
        for (name, rel) in facts.iter() {
            for fact in rel.iter() {
                match db.table(name) {
                    Some(t) if t.arity() == fact.arity() => work.push((t, intern_fact(db, fact))),
                    // No such relation: the fact is missing from every world.
                    _ => return Ok(true),
                }
            }
        }
        if work.is_empty() {
            return Ok(false);
        }
        let Some(base) = self.base_store(db) else {
            // Empty representation: no world exists, hence no world missing a fact either
            // (certainty is vacuously true); callers handle the empty rep separately.
            return Ok(false);
        };
        let search = MissingSearch { work };
        let driver = Choices(&search);
        let forest = ForestSearch {
            inner: &driver,
            root_count: search.work.len(),
            make_root: |fact_idx| {
                Some(ChoiceNode {
                    store: base.clone(),
                    meta: MissingMeta {
                        fact_idx,
                        row_idx: 0,
                    },
                })
            },
        };
        drive_ctx(&forest, ForestNode::Roots, &self.cfg, ctx, &self.stats)
    }

    /// Single-fact convenience wrapper for [`Engine::exists_world_missing_any_fact`].
    pub fn exists_world_missing_fact(
        &self,
        db: &CDatabase,
        relation: &str,
        fact: &Tuple,
    ) -> Result<bool, DecisionError> {
        self.exists_world_missing_any_fact(db, &single_fact_instance(relation, fact))
    }

    /// Is there a valuation under which some row produces a fact **outside** `instance`?
    /// Parallel counterpart of [`crate::search::exists_world_with_fact_outside`]; the
    /// per-row searches are independent subtrees.
    pub fn exists_world_with_fact_outside(
        &self,
        db: &CDatabase,
        instance: &Instance,
    ) -> Result<bool, DecisionError> {
        self.fact_outside_ctx(db, instance, &self.ctx())
    }

    pub(crate) fn fact_outside_ctx(
        &self,
        db: &CDatabase,
        instance: &Instance,
        ctx: &Ctx,
    ) -> Result<bool, DecisionError> {
        let Some(base) = self.base_store(db) else {
            return Ok(false);
        };
        let mut rows = Vec::new();
        let mut conditions = Vec::new();
        let mut fact_lists: Vec<Vec<Vec<Sym>>> = Vec::new();
        for table in db.tables() {
            let rel = instance.relation_or_empty(table.name(), table.arity());
            let facts: Vec<Vec<Sym>> = rel.iter().map(|f| intern_fact(db, f)).collect();
            let list_idx = fact_lists.len();
            fact_lists.push(facts);
            for row in table.tuples() {
                rows.push((row.terms.clone(), list_idx));
                conditions.push(row.condition.clone());
            }
        }
        let search = EscapeSearch { fact_lists, rows };
        let driver = Choices(&search);
        let forest = ForestSearch {
            inner: &driver,
            root_count: conditions.len(),
            make_root: |row| {
                // The row must be present (local condition holds) to escape.
                let mut store = base.clone();
                store
                    .assert_conjunction(&conditions[row])
                    .then_some(ChoiceNode {
                        store,
                        meta: EscapeMeta { row, fact_idx: 0 },
                    })
            },
        };
        drive_ctx(&forest, ForestNode::Roots, &self.cfg, ctx, &self.stats)
    }

    /// Drive a caller-defined [`ChoiceSearch`] through the engine's scheduler against an
    /// externally owned context.  This is how `membership::backtracking` joins the
    /// parallel engine: the membership module defines the branches, the engine supplies
    /// scheduling, budget, limits and stats.
    pub(crate) fn drive_choices<S: ChoiceSearch>(
        &self,
        search: &S,
        root: ChoiceNode<S::Meta>,
        ctx: &Ctx,
    ) -> Result<bool, DecisionError> {
        drive_ctx(&Choices(search), root, &self.cfg, ctx, &self.stats)
    }

    // -- shard-group (per-shard) variants ------------------------------------------------
    //
    // When the database's coupling graph splits, the three constraint searches decompose
    // along the groups: rep(db) is the product of the groups' representations (groups are
    // variable-disjoint), so an existential question about the whole database is either a
    // conjunction of per-group questions (covering: *every* group must have a covering
    // valuation) or a disjunction (a fact missing / a fact escaping *somewhere*).  The
    // disjunctions stay one forest — the same shared budget and first-witness
    // cancellation, with each root cloning its *group's* base store instead of the joint
    // one — while the conjunction runs the groups back to back, draining one budget pool
    // through forked contexts (a witness in one group must not cancel the next group's
    // search).  Answers are bit-identical to the joint search by construction; what
    // changes is the tree: the joint search re-explores every earlier group's
    // alternatives each time a later group fails, the decomposition pays each group once.

    /// [`Engine::exists_world_covering`] decomposed over the shard groups: the facts are
    /// split per group and every group must cover its part.  Callers dispatch here only
    /// when the coupling graph splits (`db.shard_groups().len() > 1`).  Each group's
    /// verdict goes through the decision memo, so after a delta only the dirty groups
    /// re-search.
    pub fn exists_world_covering_per_shard(
        &self,
        db: &CDatabase,
        facts: &Instance,
    ) -> Result<bool, DecisionError> {
        let Some(parts) = split_by_group(db, facts) else {
            return Ok(false);
        };
        let ctx = self.ctx();
        for (group, part) in db.shard_groups().iter().zip(&parts) {
            // A group with no facts still gates the conjunction: its globals must be
            // satisfiable (the joint base store asserts them too), which is exactly what
            // `covering_ctx` on an empty part checks.
            let covered =
                self.memo_decide(MemoOp::Covering, group.database(), part, None, || {
                    self.covering_ctx(group.database(), part, &ctx.fork())
                })?;
            if !covered {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// [`Engine::exists_world_missing_any_fact`] decomposed over the shard groups: a
    /// fact can only be missing from a world of the group owning its relation, so the
    /// disjunction runs group by group — each group's slice of the facts searched
    /// against the group's base store (one budget pool threaded through forked
    /// contexts), with the group verdict going through the decision memo.
    ///
    /// Trade-off: the pre-memo implementation drove one forest over *all* facts, so on
    /// a cold engine a witness in a late group could cancel the earlier groups'
    /// refutations mid-flight; the per-group sequence pays each earlier group's full
    /// refutation once before reaching that witness.  The memo is the compensation —
    /// on every decision after the first, untouched groups replay instead of
    /// re-searching at all (the serving pattern this subsystem exists for).
    pub fn exists_world_missing_any_fact_per_shard(
        &self,
        db: &CDatabase,
        facts: &Instance,
    ) -> Result<bool, DecisionError> {
        self.missing_any_per_shard_ctx(db, facts, &self.ctx())
    }

    pub(crate) fn missing_any_per_shard_ctx(
        &self,
        db: &CDatabase,
        facts: &Instance,
        ctx: &Ctx,
    ) -> Result<bool, DecisionError> {
        let group_of = db.shard_group_index();
        let mut parts: Vec<Instance> = vec![Instance::new(); db.shard_groups().len()];
        let mut any_fact = false;
        for (name, rel) in facts.iter() {
            if rel.is_empty() {
                continue;
            }
            match db.table_position(name) {
                Some(pos) if db.tables()[pos].arity() == rel.arity() => {
                    parts[group_of[pos]].insert_relation(name.clone(), rel.clone());
                    any_fact = true;
                }
                // No such relation (or wrong arity): missing from every world.
                _ => return Ok(true),
            }
        }
        if !any_fact {
            return Ok(false);
        }
        if db
            .shard_groups()
            .iter()
            .any(|g| !self.has_satisfiable_globals(g.database()))
        {
            // Empty representation — same outcome as the joint search's missing base
            // store; callers handle the vacuous-certainty case separately.
            return Ok(false);
        }
        for (group, part) in db.shard_groups().iter().zip(&parts) {
            if part.relation_count() == 0 {
                continue;
            }
            let missing =
                self.memo_decide(MemoOp::MissingAny, group.database(), part, None, || {
                    self.missing_any_ctx(group.database(), part, &ctx.fork())
                })?;
            if missing {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// [`Engine::exists_world_with_fact_outside`] decomposed over the shard groups: a
    /// row can only escape into a world of its own group, so the disjunction runs group
    /// by group against the group's base store and slice of the instance, with the
    /// group verdict going through the decision memo.
    pub fn exists_world_with_fact_outside_per_shard(
        &self,
        db: &CDatabase,
        instance: &Instance,
    ) -> Result<bool, DecisionError> {
        self.fact_outside_per_shard_ctx(db, instance, &self.ctx())
    }

    pub(crate) fn fact_outside_per_shard_ctx(
        &self,
        db: &CDatabase,
        instance: &Instance,
        ctx: &Ctx,
    ) -> Result<bool, DecisionError> {
        // Empty representation (some group's globals unsatisfiable ⇒ the joint globals
        // are): no world exists, hence no world with an extra fact — the outcome the
        // joint search's missing base store yields.
        if db
            .shard_groups()
            .iter()
            .any(|g| !self.has_satisfiable_globals(g.database()))
        {
            return Ok(false);
        }
        for group in db.shard_groups() {
            let gdb = group.database();
            let mut part = Instance::new();
            for table in gdb.tables() {
                if let Some(rel) = instance.relation(table.name()) {
                    if rel.arity() == table.arity() && !rel.is_empty() {
                        part.insert_relation(table.name().to_owned(), rel.clone());
                    }
                }
            }
            let escapes = self.memo_decide(MemoOp::Escape, gdb, &part, None, || {
                self.fact_outside_ctx(gdb, &part, &ctx.fork())
            })?;
            if escapes {
                return Ok(true);
            }
        }
        Ok(false)
    }

    // -- canonical-valuation enumeration -------------------------------------------------

    /// Enumerate the canonical valuations of `vars` into Δ ∪ Δ′ (exactly as
    /// [`crate::common::for_each_canonical_valuation`]) and return the result of the first
    /// `visit` call that produces `Some`.
    ///
    /// `symbols` is the id space the valuations are built in — callers pass the subject
    /// database's handle (`view.db.symbols()`), so the enumeration works unchanged over a
    /// private dictionary (the handle-threading rule: nothing below the front door touches
    /// the global table implicitly).
    ///
    /// Under parallelism the valuation that "wins" is whichever worker reports first, so
    /// callers must treat the witness as *a* witness, not *the lexicographically first*
    /// witness; the decision (`Some` vs `None`) is schedule-independent.
    pub fn find_canonical_valuation<R, F>(
        &self,
        symbols: &Symbols,
        vars: &[Variable],
        delta: &BTreeSet<Constant>,
        visit: F,
    ) -> Result<Option<R>, DecisionError>
    where
        R: Send,
        F: Fn(&Valuation) -> Option<R> + Sync,
    {
        let fresh = pw_relational::domain::fresh_constants(delta, vars.len());
        let search = EnumSearch {
            vars,
            // Intern once here; the enumeration below copies machine words only.
            delta: delta.iter().map(|c| symbols.intern(c)).collect(),
            fresh: fresh.iter().map(|c| symbols.intern(c)).collect(),
            visit,
            witness: Mutex::new(None),
        };
        let root = EnumNode {
            assignment: Vec::new(),
            fresh_used: 0,
        };
        let found = drive_ctx(&search, root, &self.cfg, &self.ctx(), &self.stats)?;
        Ok(if found {
            search
                .witness
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        } else {
            None
        })
    }
}

/// RAII guard of [`Engine::pin_memo`]: decision-memo eviction is disabled until every
/// pin is dropped.
pub(crate) struct MemoPin<'a> {
    engine: &'a Engine,
}

impl Drop for MemoPin<'_> {
    fn drop(&mut self) {
        let mut memo = lock_unpoisoned(&self.engine.decision_memo);
        memo.pins = memo.pins.saturating_sub(1);
        if memo.pins == 0 {
            self.engine.enforce_memo_capacity(&mut memo);
        }
    }
}

// -- choice searches: one branch definition for both engine phases ----------------------

/// A search whose nodes pair a [`ConstraintSet`] with cheap metadata and whose branch set
/// is defined **once**: the frontier expansion (store-cloning) and the worker DFS
/// (checkpoint/rollback) both enumerate children through [`ChoiceSearch::try_branch`], so
/// the two phases cannot drift apart — the "parallel answers equal sequential answers"
/// invariant is pinned structurally, not by keeping two loops in sync by hand.
///
/// (The canonical-valuation enumerator is the one search not expressed this way: its
/// state is a plain assignment vector, not a constraint store, and its two phases already
/// share a single choice generator, `EnumSearch::choices`.)
pub(crate) trait ChoiceSearch: Sync {
    /// The store-independent part of a node (depth, indices, bookkeeping).
    type Meta: Send + Clone;

    /// Is this an accepting leaf?
    fn is_leaf(&self, meta: &Self::Meta) -> bool;

    /// Number of candidate branches at this (non-leaf) node.
    fn branch_count(&self, meta: &Self::Meta) -> usize;

    /// Apply branch `k` to the store: `Some(child meta)` if the store stays consistent,
    /// `None` to prune.  On `None` the caller discards or rolls back the store.
    fn try_branch(
        &self,
        store: &mut ConstraintSet,
        meta: &Self::Meta,
        k: usize,
    ) -> Option<Self::Meta>;
}

pub(crate) struct ChoiceNode<M> {
    pub(crate) store: ConstraintSet,
    pub(crate) meta: M,
}

/// Adapter driving a [`ChoiceSearch`] as a [`TreeSearch`].
struct Choices<'a, S>(&'a S);

impl<S: ChoiceSearch> Choices<'_, S> {
    fn rec(&self, store: &mut ConstraintSet, meta: &S::Meta, ctx: &Ctx) -> Result<bool, Stop> {
        ctx.tick()?;
        if self.0.is_leaf(meta) {
            return Ok(true);
        }
        for k in 0..self.0.branch_count(meta) {
            let cp = store.checkpoint();
            if let Some(child) = self.0.try_branch(store, meta, k) {
                if self.rec(store, &child, ctx)? {
                    return Ok(true);
                }
            }
            store.rollback(cp);
        }
        Ok(false)
    }

    /// [`Choices::rec`] with re-splitting: same node set, same tick per node.  The fast
    /// path is the checkpoint/rollback loop above; only when a thief is starving does a
    /// node materialize its viable children as independent store clones, keep the first
    /// and shed the rest.  Every viable child is ticked exactly once at entry on either
    /// path, so budget accounting cannot tell the two apart.
    fn rec_shed(
        &self,
        store: &mut ConstraintSet,
        meta: &S::Meta,
        ctx: &Ctx,
        shed: &dyn Shed<ChoiceNode<S::Meta>>,
    ) -> Result<bool, Stop> {
        ctx.tick()?;
        if self.0.is_leaf(meta) {
            return Ok(true);
        }
        let n = self.0.branch_count(meta);
        if n > 1 && shed.wants_work() {
            let mut kids = Vec::new();
            for k in 0..n {
                let mut child_store = store.clone();
                if let Some(child_meta) = self.0.try_branch(&mut child_store, meta, k) {
                    kids.push(ChoiceNode {
                        store: child_store,
                        meta: child_meta,
                    });
                }
            }
            if kids.is_empty() {
                return Ok(false);
            }
            let mut first = kids.remove(0);
            if !kids.is_empty() {
                shed.offer(kids);
            }
            return self.rec_shed(&mut first.store, &first.meta, ctx, shed);
        }
        for k in 0..n {
            let cp = store.checkpoint();
            if let Some(child) = self.0.try_branch(store, meta, k) {
                if self.rec_shed(store, &child, ctx, shed)? {
                    return Ok(true);
                }
            }
            store.rollback(cp);
        }
        Ok(false)
    }
}

impl<S: ChoiceSearch> TreeSearch for Choices<'_, S> {
    type Node = ChoiceNode<S::Meta>;

    fn expand(&self, node: Self::Node, out: &mut Vec<Self::Node>, ctx: &Ctx) -> Result<bool, Stop> {
        ctx.tick()?;
        if self.0.is_leaf(&node.meta) {
            return Ok(true);
        }
        for k in 0..self.0.branch_count(&node.meta) {
            let mut store = node.store.clone();
            if let Some(meta) = self.0.try_branch(&mut store, &node.meta, k) {
                out.push(ChoiceNode { store, meta });
            }
        }
        Ok(false)
    }

    fn dfs(&self, mut node: Self::Node, ctx: &Ctx) -> Result<bool, Stop> {
        self.rec(&mut node.store, &node.meta, ctx)
    }

    fn dfs_shed(
        &self,
        mut node: Self::Node,
        ctx: &Ctx,
        shed: &dyn Shed<Self::Node>,
    ) -> Result<bool, Stop> {
        self.rec_shed(&mut node.store, &node.meta, ctx, shed)
    }
}

// -- covering search --------------------------------------------------------------------

struct CoverSearch<'a> {
    /// One entry per fact to cover: the table it must come from, and the interned fact.
    work: Vec<(&'a CTable, Vec<Sym>)>,
}

#[derive(Clone)]
struct CoverMeta {
    depth: usize,
    /// Rows already in use along this path — distinct facts must come from distinct
    /// rows.  A persistent (Arc-linked) list: forking a node is O(1), the membership
    /// scan is O(depth), exactly like the mutable push/pop stack of a plain DFS.
    used: Option<Arc<UsedRow>>,
}

struct UsedRow {
    /// Work item that claimed the row (identifies the table).
    item: usize,
    /// Row index within that table.
    row: usize,
    prev: Option<Arc<UsedRow>>,
}

impl CoverSearch<'_> {
    /// Is work item `i` drawn from the same table as work item `j`?
    fn same_table(&self, i: usize, j: usize) -> bool {
        std::ptr::eq(self.work[i].0, self.work[j].0)
    }

    fn row_used(&self, used: &Option<Arc<UsedRow>>, depth: usize, row_idx: usize) -> bool {
        let mut cursor = used;
        while let Some(entry) = cursor {
            if self.same_table(entry.item, depth) && entry.row == row_idx {
                return true;
            }
            cursor = &entry.prev;
        }
        false
    }
}

impl ChoiceSearch for CoverSearch<'_> {
    type Meta = CoverMeta;

    fn is_leaf(&self, meta: &CoverMeta) -> bool {
        meta.depth == self.work.len()
    }

    fn branch_count(&self, meta: &CoverMeta) -> usize {
        self.work[meta.depth].0.len()
    }

    fn try_branch(
        &self,
        store: &mut ConstraintSet,
        meta: &CoverMeta,
        row_idx: usize,
    ) -> Option<CoverMeta> {
        if self.row_used(&meta.used, meta.depth, row_idx) {
            return None;
        }
        let (table, fact) = &self.work[meta.depth];
        let row = &table.tuples()[row_idx];
        if !assert_row_produces(store, &row.terms, &row.condition, fact) {
            return None;
        }
        Some(CoverMeta {
            depth: meta.depth + 1,
            used: Some(Arc::new(UsedRow {
                item: meta.depth,
                row: row_idx,
                prev: meta.used.clone(),
            })),
        })
    }
}

// -- missing-fact search ----------------------------------------------------------------

struct MissingSearch<'a> {
    /// One entry per fact whose absence is sought: its table and the interned fact.
    work: Vec<(&'a CTable, Vec<Sym>)>,
}

#[derive(Clone, Copy)]
struct MissingMeta {
    fact_idx: usize,
    row_idx: usize,
}

impl ChoiceSearch for MissingSearch<'_> {
    type Meta = MissingMeta;

    fn is_leaf(&self, meta: &MissingMeta) -> bool {
        meta.row_idx == self.work[meta.fact_idx].0.len()
    }

    /// Per row, a reason it does not produce the fact: one per position of the row
    /// (differs from the fact there) followed by one per local-condition atom (falsified).
    fn branch_count(&self, meta: &MissingMeta) -> usize {
        let row = &self.work[meta.fact_idx].0.tuples()[meta.row_idx];
        row.terms.len() + row.condition.len()
    }

    fn try_branch(
        &self,
        store: &mut ConstraintSet,
        meta: &MissingMeta,
        k: usize,
    ) -> Option<MissingMeta> {
        let (table, fact) = &self.work[meta.fact_idx];
        let row = &table.tuples()[meta.row_idx];
        let ok = if k < row.terms.len() {
            // Reason 1: position k of the row differs from the fact.
            store.assert_neq(row.terms[k], Term::Const(fact[k]))
        } else {
            // Reason 2: atom k of the local condition is falsified.
            match row.condition.atoms()[k - row.terms.len()] {
                Atom::Eq(a, b) => store.assert_neq(a, b),
                Atom::Neq(a, b) => store.assert_eq(a, b),
            }
        };
        ok.then_some(MissingMeta {
            fact_idx: meta.fact_idx,
            row_idx: meta.row_idx + 1,
        })
    }
}

// -- escape (fact outside the instance) search ------------------------------------------

struct EscapeSearch {
    /// Per originating table: the interned instance facts the row has to differ from.
    fact_lists: Vec<Vec<Vec<Sym>>>,
    /// The candidate rows: their terms and the fact list of their table.
    rows: Vec<(Vec<Term>, usize)>,
}

#[derive(Clone, Copy)]
struct EscapeMeta {
    row: usize,
    fact_idx: usize,
}

impl ChoiceSearch for EscapeSearch {
    type Meta = EscapeMeta;

    fn is_leaf(&self, meta: &EscapeMeta) -> bool {
        let (_, fact_list) = self.rows[meta.row];
        meta.fact_idx == self.fact_lists[fact_list].len()
    }

    /// One branch per position where the row could differ from the current fact.
    fn branch_count(&self, meta: &EscapeMeta) -> usize {
        self.rows[meta.row].0.len()
    }

    fn try_branch(
        &self,
        store: &mut ConstraintSet,
        meta: &EscapeMeta,
        k: usize,
    ) -> Option<EscapeMeta> {
        let (terms, fact_list) = &self.rows[meta.row];
        let fact = &self.fact_lists[*fact_list][meta.fact_idx];
        store
            .assert_neq(terms[k], Term::Const(fact[k]))
            .then_some(EscapeMeta {
                row: meta.row,
                fact_idx: meta.fact_idx + 1,
            })
    }
}

// -- forests: several independent root subtrees in one search ---------------------------

/// Wraps a [`TreeSearch`] so a *set* of roots (independent subtrees — one per fact, one
/// per row, …) can be driven as a single search with one shared budget and one
/// cancellation scope.
///
/// Roots are materialized **lazily** through `make_root` (which may return `None` to skip
/// a seed, e.g. a row whose local condition contradicts the globals): a sequential drive
/// that succeeds on the first subtree never pays for the stores of the remaining ones.
/// A parallel drive materializes them when the super-root is expanded onto the frontier —
/// that is the point of the frontier.
struct ForestSearch<'a, S, F> {
    inner: &'a S,
    root_count: usize,
    make_root: F,
}

enum ForestNode<N> {
    /// The synthetic super-root: stands for all not-yet-materialized subtree roots.
    Roots,
    /// A node of one of the subtrees.
    Inner(N),
}

impl<S, F> TreeSearch for ForestSearch<'_, S, F>
where
    S: TreeSearch,
    F: Fn(usize) -> Option<S::Node> + Sync,
{
    type Node = ForestNode<S::Node>;

    fn expand(&self, node: Self::Node, out: &mut Vec<Self::Node>, ctx: &Ctx) -> Result<bool, Stop> {
        match node {
            ForestNode::Roots => {
                // The super-root fans out into the independent subtree roots.
                out.extend(
                    (0..self.root_count)
                        .filter_map(|k| (self.make_root)(k))
                        .map(ForestNode::Inner),
                );
                Ok(false)
            }
            ForestNode::Inner(n) => {
                let mut inner_out = Vec::new();
                let accepted = self.inner.expand(n, &mut inner_out, ctx)?;
                out.extend(inner_out.into_iter().map(ForestNode::Inner));
                Ok(accepted)
            }
        }
    }

    fn dfs(&self, node: Self::Node, ctx: &Ctx) -> Result<bool, Stop> {
        match node {
            ForestNode::Roots => {
                for k in 0..self.root_count {
                    let Some(root) = (self.make_root)(k) else {
                        continue;
                    };
                    if self.inner.dfs(root, ctx)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            ForestNode::Inner(n) => self.inner.dfs(n, ctx),
        }
    }

    fn dfs_shed(
        &self,
        node: Self::Node,
        ctx: &Ctx,
        shed: &dyn Shed<Self::Node>,
    ) -> Result<bool, Stop> {
        let wrap = WrapShed { outer: shed };
        match node {
            ForestNode::Roots => {
                for k in 0..self.root_count {
                    // A starving thief takes all the later roots in one haul; each is a
                    // whole independent subtree, the best split available here.
                    if k + 1 < self.root_count && shed.wants_work() {
                        let rest: Vec<_> = (k + 1..self.root_count)
                            .filter_map(|j| (self.make_root)(j))
                            .map(ForestNode::Inner)
                            .collect();
                        if !rest.is_empty() {
                            shed.offer(rest);
                        }
                        let Some(root) = (self.make_root)(k) else {
                            return Ok(false);
                        };
                        return self.inner.dfs_shed(root, ctx, &wrap);
                    }
                    let Some(root) = (self.make_root)(k) else {
                        continue;
                    };
                    if self.inner.dfs_shed(root, ctx, &wrap)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            ForestNode::Inner(n) => self.inner.dfs_shed(n, ctx, &wrap),
        }
    }
}

/// Adapter letting a forest's inner search shed through the forest-level [`Shed`]: the
/// inner subtree roots it publishes are wrapped back into [`ForestNode::Inner`].
struct WrapShed<'a, N> {
    outer: &'a dyn Shed<ForestNode<N>>,
}

impl<N: Send> Shed<N> for WrapShed<'_, N> {
    fn wants_work(&self) -> bool {
        self.outer.wants_work()
    }

    fn offer(&self, nodes: Vec<N>) {
        self.outer
            .offer(nodes.into_iter().map(ForestNode::Inner).collect());
    }
}

// -- canonical-valuation enumeration ----------------------------------------------------

struct EnumSearch<'a, R, F> {
    vars: &'a [Variable],
    delta: Vec<Sym>,
    fresh: Vec<Sym>,
    visit: F,
    witness: Mutex<Option<R>>,
}

#[derive(Clone)]
struct EnumNode {
    /// Interned values only: forking a node is a flat memcpy.
    assignment: Vec<Sym>,
    fresh_used: usize,
}

impl<R, F> EnumSearch<'_, R, F>
where
    R: Send,
    F: Fn(&Valuation) -> Option<R> + Sync,
{
    /// Candidate values for the next variable given how many fresh constants are in use:
    /// all of Δ, the fresh constants already used, and at most one new fresh constant.
    fn choices(&self, fresh_used: usize) -> impl Iterator<Item = (Sym, usize)> + '_ {
        let fresh_limit = (fresh_used + 1).min(self.fresh.len());
        self.delta
            .iter()
            .copied()
            .map(move |c| (c, fresh_used))
            .chain(
                self.fresh[..fresh_limit]
                    .iter()
                    .enumerate()
                    .map(move |(i, &c)| (c, fresh_used.max(i + 1))),
            )
    }

    fn visit_leaf(&self, assignment: &[Sym], ctx: &Ctx) -> Result<bool, Stop> {
        ctx.tick()?;
        let valuation =
            Valuation::from_pairs(self.vars.iter().copied().zip(assignment.iter().copied()));
        if let Some(r) = (self.visit)(&valuation) {
            let mut witness = lock_unpoisoned(&self.witness);
            witness.get_or_insert(r);
            return Ok(true);
        }
        Ok(false)
    }

    fn dfs_rec(
        &self,
        assignment: &mut Vec<Sym>,
        fresh_used: usize,
        ctx: &Ctx,
    ) -> Result<bool, Stop> {
        if assignment.len() == self.vars.len() {
            return self.visit_leaf(assignment, ctx);
        }
        for (value, new_used) in self.choices(fresh_used) {
            assignment.push(value);
            let found = self.dfs_rec(assignment, new_used, ctx)?;
            assignment.pop();
            if found {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// [`EnumSearch::dfs_rec`] with re-splitting.  Only leaves tick (matching `dfs_rec`
    /// and `expand`), so moving interior nodes between workers is invisible to the
    /// budget; an assignment prefix is a flat `Vec<Sym>`, so splitting is a memcpy.
    fn rec_shed(
        &self,
        assignment: &mut Vec<Sym>,
        fresh_used: usize,
        ctx: &Ctx,
        shed: &dyn Shed<EnumNode>,
    ) -> Result<bool, Stop> {
        if assignment.len() == self.vars.len() {
            return self.visit_leaf(assignment, ctx);
        }
        if shed.wants_work() {
            let mut kids: Vec<EnumNode> = self
                .choices(fresh_used)
                .map(|(value, new_used)| {
                    let mut forked = assignment.clone();
                    forked.push(value);
                    EnumNode {
                        assignment: forked,
                        fresh_used: new_used,
                    }
                })
                .collect();
            if kids.len() > 1 {
                let mut first = kids.remove(0);
                shed.offer(kids);
                return self.rec_shed(&mut first.assignment, first.fresh_used, ctx, shed);
            }
        }
        for (value, new_used) in self.choices(fresh_used) {
            assignment.push(value);
            let found = self.rec_shed(assignment, new_used, ctx, shed)?;
            assignment.pop();
            if found {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl<R, F> TreeSearch for EnumSearch<'_, R, F>
where
    R: Send,
    F: Fn(&Valuation) -> Option<R> + Sync,
{
    type Node = EnumNode;

    fn expand(&self, node: EnumNode, out: &mut Vec<EnumNode>, ctx: &Ctx) -> Result<bool, Stop> {
        if node.assignment.len() == self.vars.len() {
            return self.visit_leaf(&node.assignment, ctx);
        }
        for (value, new_used) in self.choices(node.fresh_used) {
            let mut assignment = node.assignment.clone();
            assignment.push(value);
            out.push(EnumNode {
                assignment,
                fresh_used: new_used,
            });
        }
        Ok(false)
    }

    fn dfs(&self, mut node: EnumNode, ctx: &Ctx) -> Result<bool, Stop> {
        self.dfs_rec(&mut node.assignment, node.fresh_used, ctx)
    }

    fn dfs_shed(
        &self,
        mut node: EnumNode,
        ctx: &Ctx,
        shed: &dyn Shed<EnumNode>,
    ) -> Result<bool, Stop> {
        self.rec_shed(&mut node.assignment, node.fresh_used, ctx, shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::VarGen;
    use pw_core::CTuple;
    use pw_relational::{rel, tup};

    fn engines() -> Vec<Engine> {
        vec![
            Engine::new(EngineConfig::sequential(Budget(1_000_000))),
            Engine::new(EngineConfig::with_threads(2, Budget(1_000_000))),
            Engine::new(EngineConfig::with_threads(8, Budget(1_000_000))),
        ]
    }

    #[test]
    fn covering_agrees_across_thread_counts() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::codd(
            "R",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::Var(y), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        for engine in engines() {
            assert!(engine
                .exists_world_covering(&db, &Instance::single("R", rel![[1, 5]]))
                .unwrap());
            assert!(engine
                .exists_world_covering(&db, &Instance::single("R", rel![[1, 5], [7, 2]]))
                .unwrap());
            assert!(!engine
                .exists_world_covering(&db, &Instance::single("R", rel![[1, 5], [7, 2], [1, 6]]))
                .unwrap());
            assert!(!engine
                .exists_world_covering(&db, &Instance::single("R", rel![[3, 4]]))
                .unwrap());
        }
    }

    #[test]
    fn missing_fact_agrees_across_thread_counts() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("R", 1, [vec![Term::constant(1)], vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        for engine in engines() {
            assert!(!engine
                .exists_world_missing_fact(&db, "R", &tup![1])
                .unwrap());
            assert!(engine
                .exists_world_missing_fact(&db, "R", &tup![2])
                .unwrap());
            assert!(engine
                .exists_world_missing_fact(&db, "S", &tup![1])
                .unwrap());
        }
    }

    #[test]
    fn fact_outside_agrees_across_thread_counts() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("R", 1, [vec![Term::constant(1)], vec![Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        let ground = CDatabase::single(CTable::codd("R", 1, [vec![Term::constant(1)]]).unwrap());
        for engine in engines() {
            assert!(engine
                .exists_world_with_fact_outside(&db, &Instance::single("R", rel![[1]]))
                .unwrap());
            assert!(!engine
                .exists_world_with_fact_outside(&ground, &Instance::single("R", rel![[1]]))
                .unwrap());
        }
    }

    #[test]
    fn conditional_rows_are_respected_in_parallel() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Row (1) present iff x = 0; row (2) present iff x ≠ 0: mutually exclusive.
        let t = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [
                CTuple::with_condition([Term::constant(1)], Conjunction::new([Atom::eq(x, 0)])),
                CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::neq(x, 0)])),
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        for engine in engines() {
            assert!(engine
                .exists_world_covering(&db, &Instance::single("R", rel![[1]]))
                .unwrap());
            assert!(!engine
                .exists_world_covering(&db, &Instance::single("R", rel![[1], [2]]))
                .unwrap());
            // (1) is missing exactly when x ≠ 0.
            assert!(engine
                .exists_world_missing_fact(&db, "R", &tup![1])
                .unwrap());
        }
    }

    #[test]
    fn canonical_enumeration_matches_sequential_count_semantics() {
        // The parallel enumerator must see exactly the canonical valuations: witness
        // existence must agree with the sequential enumerator on a predicate that holds
        // for one specific canonical valuation only.
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..3).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = [Constant::int(7)].into();
        for engine in engines() {
            // A witness that requires a *fresh* constant in second position.
            let found = engine
                .find_canonical_valuation(Symbols::global(), &vars, &delta, |v| {
                    let second = v.get(vars[1])?;
                    (second != Constant::int(7)).then_some(second)
                })
                .unwrap();
            assert!(found.is_some(), "fresh-constant valuations are enumerated");
            // An unsatisfiable predicate has no witness on any thread count.
            let none = engine
                .find_canonical_valuation(Symbols::global(), &vars, &delta, |_| None::<()>)
                .unwrap();
            assert!(none.is_none());
        }
    }

    #[test]
    fn budget_exceeded_is_deterministic_when_no_witness_exists() {
        let mut g = VarGen::new();
        let vars: Vec<Variable> = (0..8).map(|_| g.fresh()).collect();
        let delta: BTreeSet<Constant> = (0..8).map(Constant::int).collect();
        for threads in [1, 2, 8] {
            let engine = Engine::new(EngineConfig::with_threads(threads, Budget(200)));
            for _ in 0..3 {
                let r = engine
                    .find_canonical_valuation(Symbols::global(), &vars, &delta, |_| None::<()>);
                assert_eq!(
                    r.err(),
                    Some(DecisionError::BudgetExceeded),
                    "no witness + tree larger than budget ⇒ always BudgetExceeded ({threads} threads)"
                );
            }
        }
    }

    #[test]
    fn base_store_is_memoized_per_database() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let clone = db.clone();
        let engine = Engine::new(EngineConfig::sequential(Budget(1000)));
        assert!(engine.base_store(&db).is_some());
        let misses_before = engine.sat_cache().stats().misses;
        // A *clone* of the database hits the same cache entry.
        assert!(engine.base_store(&clone).is_some());
        assert_eq!(engine.sat_cache().stats().misses, misses_before);
    }

    #[test]
    fn unsatisfiable_globals_yield_no_base_store() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let engine = Engine::new(EngineConfig::parallel(Budget(1000)));
        assert!(engine.base_store(&db).is_none());
        assert!(!engine.has_satisfiable_globals(&db));
        assert!(!engine
            .exists_world_covering(&db, &Instance::single("R", rel![[1]]))
            .unwrap());
        assert!(!engine
            .exists_world_missing_fact(&db, "R", &tup![1])
            .unwrap());
    }
}
