//! The batched front door: decide many requests against (typically) one database in a
//! single call, amortizing preprocessing and saturating the machine.
//!
//! A service built on this crate rarely asks one question at a time — it triages a queue
//! of membership/possibility/certainty/… questions, most of them against the same database
//! or a handful of databases.  [`decide_all`] accepts such a queue and:
//!
//! * builds one [`Engine`] for the whole batch, so the hash-consed condition-satisfiability
//!   cache and the per-database **base stores** (all global conditions asserted into a
//!   [`pw_condition::ConstraintSet`] once, then cloned per search) are shared by every
//!   request — the preprocessing that a one-shot `decide` call repeats per question is paid
//!   once per database here;
//! * runs the requests on a worker pool, giving each request a proportional slice of the
//!   thread budget: a batch of one request uses every thread *inside* the search (the
//!   engine's frontier parallelism), a large batch runs many sequential searches
//!   concurrently — both ends saturate the cores without oversubscribing them;
//! * reports, next to every answer, the [`Strategy`] the dispatcher chose, exactly like
//!   the single-shot entry points do for the benchmark harness.
//!
//! Answers are positionally aligned with the input slice and independent of the worker
//! scheduling (see the determinism notes in [`crate::engine`]).

use crate::common::{Budget, Decision, DecisionError, Strategy};
use crate::engine::{lock_unpoisoned, panic_message, Engine, EngineConfig};
use crate::{certainty, containment, membership, possibility, uniqueness};
use pw_core::{CDatabase, DbDelta, Delta, DeltaError, View};
use pw_relational::Instance;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One decision question, phrased exactly like the single-shot entry points.
#[derive(Clone, Debug)]
pub enum DecisionRequest {
    /// `MEMB(q)`: is `instance` a possible world of the view?
    Membership {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The candidate world.
        instance: Instance,
    },
    /// `UNIQ(q₀)`: is the represented set exactly `{instance}`?
    Uniqueness {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The candidate unique world.
        instance: Instance,
    },
    /// `CONT(q₀, q)`: is every world of `left` a world of `right`?
    Containment {
        /// The contained view.
        left: View,
        /// The containing view.
        right: View,
    },
    /// `POSS(·, q)`: is some world containing all of `facts` possible?
    Possibility {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The facts that must all hold in one world.
        facts: Instance,
    },
    /// `CERT(·, q)`: do all of `facts` hold in every world?
    Certainty {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The facts that must hold in every world.
        facts: Instance,
    },
}

impl DecisionRequest {
    /// The strategy the dispatcher will choose for this request (same tables as the
    /// per-problem `strategy` functions).
    pub fn strategy(&self) -> Strategy {
        match self {
            DecisionRequest::Membership { view, .. } => membership::view_strategy(view),
            DecisionRequest::Uniqueness { view, .. } => uniqueness::strategy(view),
            DecisionRequest::Containment { left, right } => containment::strategy(left, right),
            DecisionRequest::Possibility { view, .. } => possibility::strategy(view),
            DecisionRequest::Certainty { view, .. } => certainty::strategy(view),
        }
    }

    /// The group-weighted work-item count of this request: the number of shard groups
    /// its database's coupling graph splits into (1 when nothing splits).  A request
    /// that fans out across `k` groups is `k` units of schedulable work — the batch
    /// queue orders by this weight so multi-group requests start first and do not
    /// straggle at the tail of the batch (longest-processing-time-first scheduling).
    pub fn work_items(&self) -> usize {
        let db = match self {
            DecisionRequest::Membership { view, .. }
            | DecisionRequest::Uniqueness { view, .. }
            | DecisionRequest::Possibility { view, .. }
            | DecisionRequest::Certainty { view, .. } => &view.db,
            DecisionRequest::Containment { left, .. } => &left.db,
        };
        db.shard_groups().len().max(1)
    }

    /// Decide the request; the [`Decision`] carries the answer next to the [`Strategy`]
    /// the dispatcher chose, so the view→c-table conversion behind the dispatch tables
    /// runs once per request — for successes *and* for budget-exceeded failures alike.
    /// Its certificate is populated when the engine runs with [`EngineConfig::certify`]
    /// on, `None` otherwise.
    fn decide(&self, engine: &Engine) -> Decision {
        match self {
            DecisionRequest::Membership { view, instance } => {
                membership::view_membership_certified(view, instance, engine)
            }
            DecisionRequest::Uniqueness { view, instance } => {
                uniqueness::decide_certified(view, instance, engine)
            }
            DecisionRequest::Containment { left, right } => {
                containment::decide_certified(left, right, engine)
            }
            DecisionRequest::Possibility { view, facts } => {
                possibility::decide_certified(view, facts, engine)
            }
            DecisionRequest::Certainty { view, facts } => {
                certainty::decide_certified(view, facts, engine)
            }
        }
    }
}

/// The answer to one [`DecisionRequest`]: the same [`Decision`] struct every
/// single-shot `decide_with`/`decide_certified` path returns.  The batched front door
/// adds nothing on top — one shape flows from the per-problem deciders through the
/// batch API to the wire layer.
pub type DecisionOutcome = Decision;

/// Decide every request with all available cores and the default [`Budget`].
pub fn decide_all(requests: &[DecisionRequest]) -> Vec<DecisionOutcome> {
    decide_all_with(requests, &EngineConfig::parallel(Budget::default()))
}

/// Decide every request under an explicit configuration.  `cfg.threads` is the *total*
/// thread budget of the batch; `cfg.budget` applies to each request's search
/// independently (a slow request cannot starve the others of budget).
pub fn decide_all_with(requests: &[DecisionRequest], cfg: &EngineConfig) -> Vec<DecisionOutcome> {
    Session::sized(cfg, requests.len()).decide_all(requests)
}

/// One re-decision: the mutated database, what the delta changed, and the outcomes.
#[derive(Clone, Debug)]
pub struct Redecision {
    /// The database after the delta — the `prev` of the next [`Session::redecide_all`].
    pub db: CDatabase,
    /// Which tables and shard groups the delta changed (see [`pw_core::DbDelta`]).
    pub change: DbDelta,
    /// The outcomes, positionally aligned with the request slice.
    pub outcomes: Vec<DecisionOutcome>,
}

/// A long-lived batch session: one [`Engine`] owning the caches that make repeated and
/// *incremental* decisions cheap — the hash-consed condition-satisfiability cache, the
/// per-database base stores, and the per-group decision memo.
///
/// [`decide_all_with`] builds a transient session per call; a service that re-decides
/// after every mutation keeps one session alive and calls [`Session::redecide_all`], so
/// the verdicts of shard groups a delta did not touch replay from the memo instead of
/// being re-searched.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    workers: usize,
}

impl Session {
    /// A session for batches of roughly `cfg.threads` concurrent requests.
    pub fn new(cfg: &EngineConfig) -> Self {
        Session::sized(cfg, cfg.threads)
    }

    /// A session sized for batches of about `expected_batch` requests: `cfg.threads` is
    /// split between concurrent requests and threads inside each request's search,
    /// exactly as [`decide_all_with`] splits it.
    pub fn sized(cfg: &EngineConfig, expected_batch: usize) -> Self {
        let workers = cfg.threads.min(expected_batch.max(1)).max(1);
        let threads_per_request = (cfg.threads / workers).max(1);
        let mut inner_cfg = cfg.clone();
        inner_cfg.threads = threads_per_request;
        Session {
            engine: Engine::new(inner_cfg),
            workers,
        }
    }

    /// A session whose decisions carry certificates: same answers, same strategies, same
    /// memo keys as an uncertified session over [`EngineConfig::certified`]`(*cfg)`, but
    /// every [`DecisionOutcome`] comes back with evidence the independent checker
    /// `pw_check` verifies in polynomial time, and the memo stores certificates beside
    /// the per-group verdicts so replayed groups stay auditable after deltas.
    pub fn certifying(cfg: &EngineConfig, expected_batch: usize) -> Self {
        Session::sized(&cfg.clone().certified(), expected_batch)
    }

    /// The session's engine (shared caches, memo statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Decide every request on the session's engine.  Answers are positionally aligned
    /// with the input and schedule-independent; per-group verdicts populate the
    /// decision memo for later re-decisions.
    pub fn decide_all(&self, requests: &[DecisionRequest]) -> Vec<DecisionOutcome> {
        run_batch(requests, &self.engine, self.workers)
    }

    /// [`Session::decide_all`] with graceful degradation: requests that fail with
    /// [`DecisionError::BudgetExceeded`] are re-decided under a geometrically
    /// escalated budget (×4 per pass, up to `max_retries` extra passes), and the
    /// session's configured budget is restored afterwards.
    ///
    /// Soundness: budget-exceeded outcomes are **never** memoized (only definite
    /// verdicts enter the decision memo), so a retried search cannot replay a verdict
    /// computed under the starved budget — the escalated pass searches afresh and its
    /// answer (and certificate) is bit-identical to a single run under the larger
    /// budget.  Other errors — deadline, cancellation, worker panic — are *not*
    /// retried: more budget would not change them.
    pub fn decide_all_with_retry(
        &mut self,
        requests: &[DecisionRequest],
        max_retries: u32,
    ) -> Vec<DecisionOutcome> {
        let mut outcomes = run_batch(requests, &self.engine, self.workers);
        let original = self.engine.config().budget;
        let mut budget = original;
        for _ in 0..max_retries {
            let starved: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o.answer, Err(DecisionError::BudgetExceeded)))
                .map(|(i, _)| i)
                .collect();
            if starved.is_empty() {
                break;
            }
            budget = Budget(budget.0.saturating_mul(4));
            self.engine.set_budget(budget);
            let retry: Vec<DecisionRequest> =
                starved.iter().map(|&i| requests[i].clone()).collect();
            for (slot, outcome) in
                starved
                    .into_iter()
                    .zip(run_batch(&retry, &self.engine, self.workers))
            {
                outcomes[slot] = outcome;
            }
        }
        self.engine.set_budget(original);
        outcomes
    }

    /// [`Session::decide_all`] under a per-batch wall-clock deadline: every request's
    /// search resolves `deadline` to an absolute instant when it starts, and a search
    /// that outlives it reports [`DecisionError::DeadlineExceeded`].  The session's
    /// configured deadline is restored afterwards, so interleaved un-deadlined batches
    /// are unaffected.  Sound for a memoizing session: only definite verdicts enter the
    /// decision memo, so a deadline-exceeded outcome can never replay later.
    pub fn decide_all_within(
        &mut self,
        requests: &[DecisionRequest],
        deadline: std::time::Duration,
    ) -> Vec<DecisionOutcome> {
        let configured = self.engine.config().deadline;
        self.engine.set_deadline(Some(deadline));
        let outcomes = run_batch(requests, &self.engine, self.workers);
        self.engine.set_deadline(configured);
        outcomes
    }

    /// Apply `delta` to `prev` and re-decide `requests` against the mutated database.
    ///
    /// Every request whose view is phrased against `prev` is re-bound to the new
    /// database; the per-shard dispatchers then replay memoized verdicts for the shard
    /// groups the delta did not touch (carried over by [`pw_core::CDatabase::apply`]
    /// with their cache identity intact) and re-search only the dirty groups — a
    /// condition-coupled dirty group falls back to a fresh joint search of that group,
    /// so answers stay bit-identical to a from-scratch decide.  Cache entries keyed by
    /// the retired database version (and by dissolved shard groups) are dropped so a
    /// long-lived session does not accumulate stale state.
    pub fn redecide_all(
        &self,
        prev: &CDatabase,
        delta: &Delta,
        requests: &[DecisionRequest],
    ) -> Result<Redecision, DeltaError> {
        let (db, change) = prev.apply(delta)?;
        if !change.is_noop() {
            // Retire the caches of everything the delta dissolved: old shard groups
            // that no longer appear in the new graph, and the previous joint value.
            for old in prev.shard_groups() {
                let survives = db
                    .shard_groups()
                    .iter()
                    .any(|new| new.database() == old.database());
                if !survives {
                    self.engine.retire_database(old.database());
                }
            }
            self.engine.retire_database(prev);
            // The SatCache is keyed by condition, not database: purge only the
            // conditions the retired value no longer shares with the live one.
            self.engine.retire_conditions(prev, &db);
        }
        let rebound: Vec<DecisionRequest> = requests
            .iter()
            .map(|r| rebind_request(r, prev, &db))
            .collect();
        // Pin the memo for the whole replay batch: a bounded memo must not evict a
        // carried-over verdict between the delta and the request that replays it.
        let replay_pin = self.engine.pin_memo();
        let outcomes = run_batch(&rebound, &self.engine, self.workers);
        drop(replay_pin);
        Ok(Redecision {
            db,
            change,
            outcomes,
        })
    }
}

/// Convenience one-shot [`Session::redecide_all`] with all cores and the default
/// [`Budget`].  A fresh session has an empty memo, so this pays a from-scratch decide;
/// the incremental win comes from keeping one [`Session`] across the decide/re-decide
/// sequence.
pub fn redecide_all(
    prev: &CDatabase,
    delta: &Delta,
    requests: &[DecisionRequest],
) -> Result<Redecision, DeltaError> {
    Session::sized(&EngineConfig::parallel(Budget::default()), requests.len())
        .redecide_all(prev, delta, requests)
}

/// Re-point a request's view(s) from `prev` to `next`; views over other databases are
/// left alone.
fn rebind_request(
    request: &DecisionRequest,
    prev: &CDatabase,
    next: &CDatabase,
) -> DecisionRequest {
    let rebind = |view: &View| -> View {
        if view.db == *prev {
            View::new(view.query.clone(), next.clone())
        } else {
            view.clone()
        }
    };
    match request {
        DecisionRequest::Membership { view, instance } => DecisionRequest::Membership {
            view: rebind(view),
            instance: instance.clone(),
        },
        DecisionRequest::Uniqueness { view, instance } => DecisionRequest::Uniqueness {
            view: rebind(view),
            instance: instance.clone(),
        },
        DecisionRequest::Containment { left, right } => DecisionRequest::Containment {
            left: rebind(left),
            right: rebind(right),
        },
        DecisionRequest::Possibility { view, facts } => DecisionRequest::Possibility {
            view: rebind(view),
            facts: facts.clone(),
        },
        DecisionRequest::Certainty { view, facts } => DecisionRequest::Certainty {
            view: rebind(view),
            facts: facts.clone(),
        },
    }
}

/// Decide one request behind the per-request isolation boundary: a panic anywhere in
/// the request's search — or injected by [`crate::FaultPlan::panic_on_request`] at
/// this batch position — becomes [`DecisionError::WorkerPanicked`] for this request
/// alone.  Sibling requests in the batch are untouched, and the engine's caches stay
/// usable (no engine lock is held across the unwind; poisoned outcome slots are
/// recovered by the caller).
fn guarded_outcome(request: &DecisionRequest, engine: &Engine, index: usize) -> DecisionOutcome {
    catch_unwind(AssertUnwindSafe(|| {
        if let Some(faults) = &engine.config().faults {
            if faults.panic_on_request == Some(index) {
                panic!(
                    "fault injection (seed {}): forced panic on request {index}",
                    faults.seed
                );
            }
        }
        request.decide(engine)
    }))
    .unwrap_or_else(|payload| {
        let message = panic_message(payload.as_ref());
        // Best effort: the dispatch-table lookup runs over the same view the search
        // just panicked on, so it gets its own boundary.
        let strategy =
            catch_unwind(AssertUnwindSafe(|| request.strategy())).unwrap_or(Strategy::Backtracking);
        Decision::of(Err(DecisionError::WorkerPanicked(message)), strategy)
    })
}

/// The shared worker pool behind [`Session::decide_all`] and [`decide_all_with`].
fn run_batch(
    requests: &[DecisionRequest],
    engine: &Engine,
    workers: usize,
) -> Vec<DecisionOutcome> {
    if requests.is_empty() {
        return Vec::new();
    }
    let workers = workers.min(requests.len()).max(1);
    if workers == 1 {
        return requests
            .iter()
            .enumerate()
            .map(|(i, request)| guarded_outcome(request, engine, i))
            .collect();
    }

    // Queue order: group-weighted work items descending (LPT scheduling).  A request
    // that fans out across many shard groups is the longest job in the batch; starting
    // it first keeps the tail of the batch from serialising behind it.  Ties break by
    // request index so the queue order — and therefore worker assignment — is a pure
    // function of the batch, not of sort internals.  Outcomes stay positionally
    // aligned — only the execution order changes, and answers are
    // schedule-independent (see the engine's determinism notes).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_unstable_by_key(|&i| (std::cmp::Reverse(requests[i].work_items()), i));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<DecisionOutcome>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let queued = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = order.get(queued) else {
                    return;
                };
                let outcome = guarded_outcome(&requests[i], engine, i);
                *lock_unpoisoned(&slots[i]) = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every request was decided")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::{CDatabase, CTable, CTuple};
    use pw_relational::rel;

    fn demo_db() -> CDatabase {
        let mut g = VarGen::new();
        let x = g.fresh();
        CDatabase::single(
            CTable::new(
                "R",
                1,
                Conjunction::truth(),
                [
                    CTuple::of_terms([Term::constant(1)]),
                    CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::eq(x, 0)])),
                ],
            )
            .unwrap(),
        )
    }

    fn demo_requests() -> Vec<DecisionRequest> {
        let view = View::identity(demo_db());
        vec![
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: Instance::single("R", rel![[1], [2]]),
            },
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: Instance::single("R", rel![[1]]),
            },
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: Instance::single("R", rel![[2]]),
            },
            DecisionRequest::Membership {
                view: view.clone(),
                instance: Instance::single("R", rel![[1]]),
            },
            DecisionRequest::Uniqueness {
                view: view.clone(),
                instance: Instance::single("R", rel![[1]]),
            },
            DecisionRequest::Containment {
                left: view.clone(),
                right: view,
            },
        ]
    }

    fn expected() -> Vec<bool> {
        // (1,2) possible; (1) certain; (2) not certain; {(1)} is a member; {(1)} is not
        // the unique world; every view contains itself.
        vec![true, true, false, true, false, true]
    }

    #[test]
    fn batch_matches_single_shot_answers() {
        let requests = demo_requests();
        let outcomes = decide_all_with(&requests, &EngineConfig::sequential(Budget(1_000_000)));
        let answers: Vec<bool> = outcomes
            .iter()
            .map(|o| *o.answer.as_ref().unwrap())
            .collect();
        assert_eq!(answers, expected());
    }

    #[test]
    fn batch_is_schedule_independent() {
        let requests = demo_requests();
        for threads in [1, 2, 3, 8] {
            let cfg = EngineConfig::with_threads(threads, Budget(1_000_000));
            let outcomes = decide_all_with(&requests, &cfg);
            let answers: Vec<bool> = outcomes
                .iter()
                .map(|o| *o.answer.as_ref().unwrap())
                .collect();
            assert_eq!(answers, expected(), "answers with {threads} threads");
        }
    }

    #[test]
    fn batch_reports_strategies() {
        let requests = demo_requests();
        let outcomes = decide_all(&requests);
        assert_eq!(outcomes.len(), requests.len());
        assert_eq!(outcomes[0].strategy, Strategy::Backtracking);
        assert_eq!(outcomes[1].strategy, Strategy::Backtracking);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(decide_all(&[]).is_empty());
    }
}
