//! The batched front door: decide many requests against (typically) one database in a
//! single call, amortizing preprocessing and saturating the machine.
//!
//! A service built on this crate rarely asks one question at a time — it triages a queue
//! of membership/possibility/certainty/… questions, most of them against the same database
//! or a handful of databases.  [`decide_all`] accepts such a queue and:
//!
//! * builds one [`Engine`] for the whole batch, so the hash-consed condition-satisfiability
//!   cache and the per-database **base stores** (all global conditions asserted into a
//!   [`pw_condition::ConstraintSet`] once, then cloned per search) are shared by every
//!   request — the preprocessing that a one-shot `decide` call repeats per question is paid
//!   once per database here;
//! * runs the requests on a worker pool, giving each request a proportional slice of the
//!   thread budget: a batch of one request uses every thread *inside* the search (the
//!   engine's frontier parallelism), a large batch runs many sequential searches
//!   concurrently — both ends saturate the cores without oversubscribing them;
//! * reports, next to every answer, the [`Strategy`] the dispatcher chose, exactly like
//!   the single-shot entry points do for the benchmark harness.
//!
//! Answers are positionally aligned with the input slice and independent of the worker
//! scheduling (see the determinism notes in [`crate::engine`]).

use crate::common::{Budget, Decision, DecisionError, Strategy};
use crate::engine::{lock_unpoisoned, panic_message, Engine, EngineConfig};
use crate::{certainty, containment, membership, possibility, uniqueness};
use pw_core::{CDatabase, DbDelta, Delta, DeltaError, View};
use pw_relational::Instance;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One decision question, phrased exactly like the single-shot entry points.
#[derive(Clone, Debug)]
pub enum DecisionRequest {
    /// `MEMB(q)`: is `instance` a possible world of the view?
    Membership {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The candidate world.
        instance: Instance,
    },
    /// `UNIQ(q₀)`: is the represented set exactly `{instance}`?
    Uniqueness {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The candidate unique world.
        instance: Instance,
    },
    /// `CONT(q₀, q)`: is every world of `left` a world of `right`?
    Containment {
        /// The contained view.
        left: View,
        /// The containing view.
        right: View,
    },
    /// `POSS(·, q)`: is some world containing all of `facts` possible?
    Possibility {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The facts that must all hold in one world.
        facts: Instance,
    },
    /// `CERT(·, q)`: do all of `facts` hold in every world?
    Certainty {
        /// The view whose represented worlds are asked about.
        view: View,
        /// The facts that must hold in every world.
        facts: Instance,
    },
}

impl DecisionRequest {
    /// The strategy the dispatcher will choose for this request (same tables as the
    /// per-problem `strategy` functions).
    pub fn strategy(&self) -> Strategy {
        match self {
            DecisionRequest::Membership { view, .. } => membership::view_strategy(view),
            DecisionRequest::Uniqueness { view, .. } => uniqueness::strategy(view),
            DecisionRequest::Containment { left, right } => containment::strategy(left, right),
            DecisionRequest::Possibility { view, .. } => possibility::strategy(view),
            DecisionRequest::Certainty { view, .. } => certainty::strategy(view),
        }
    }

    /// The group-weighted work-item count of this request: the number of shard groups
    /// its database's coupling graph splits into (1 when nothing splits).  A request
    /// that fans out across `k` groups is `k` units of schedulable work — the batch
    /// queue orders by this weight so multi-group requests start first and do not
    /// straggle at the tail of the batch (longest-processing-time-first scheduling).
    pub fn work_items(&self) -> usize {
        let db = match self {
            DecisionRequest::Membership { view, .. }
            | DecisionRequest::Uniqueness { view, .. }
            | DecisionRequest::Possibility { view, .. }
            | DecisionRequest::Certainty { view, .. } => &view.db,
            DecisionRequest::Containment { left, .. } => &left.db,
        };
        db.shard_groups().len().max(1)
    }

    /// Decide the request; the [`Decision`] carries the answer next to the [`Strategy`]
    /// the dispatcher chose, so the view→c-table conversion behind the dispatch tables
    /// runs once per request — for successes *and* for budget-exceeded failures alike.
    /// Its certificate is populated when the engine runs with [`EngineConfig::certify`]
    /// on, `None` otherwise.
    fn decide(&self, engine: &Engine) -> Decision {
        match self {
            DecisionRequest::Membership { view, instance } => {
                membership::view_membership_certified(view, instance, engine)
            }
            DecisionRequest::Uniqueness { view, instance } => {
                uniqueness::decide_certified(view, instance, engine)
            }
            DecisionRequest::Containment { left, right } => {
                containment::decide_certified(left, right, engine)
            }
            DecisionRequest::Possibility { view, facts } => {
                possibility::decide_certified(view, facts, engine)
            }
            DecisionRequest::Certainty { view, facts } => {
                certainty::decide_certified(view, facts, engine)
            }
        }
    }
}

/// The answer to one [`DecisionRequest`]: the same [`Decision`] struct every
/// single-shot `decide_with`/`decide_certified` path returns.  The batched front door
/// adds nothing on top — one shape flows from the per-problem deciders through the
/// batch API to the wire layer.
pub type DecisionOutcome = Decision;

/// Decide every request with all available cores and the default [`Budget`].
pub fn decide_all(requests: &[DecisionRequest]) -> Vec<DecisionOutcome> {
    decide_all_with(requests, &EngineConfig::parallel(Budget::default()))
}

/// Decide every request under an explicit configuration.  `cfg.threads` is the *total*
/// thread budget of the batch; `cfg.budget` applies to each request's search
/// independently (a slow request cannot starve the others of budget).
pub fn decide_all_with(requests: &[DecisionRequest], cfg: &EngineConfig) -> Vec<DecisionOutcome> {
    Session::sized(cfg, requests.len()).decide_all(requests)
}

/// One re-decision: the mutated database, what the delta changed, and the outcomes.
#[derive(Clone, Debug)]
pub struct Redecision {
    /// The database after the delta — the `prev` of the next [`Session::redecide_all`].
    pub db: CDatabase,
    /// Which tables and shard groups the delta changed (see [`pw_core::DbDelta`]).
    pub change: DbDelta,
    /// The outcomes, positionally aligned with the request slice.
    pub outcomes: Vec<DecisionOutcome>,
}

/// A long-lived batch session: one [`Engine`] owning the caches that make repeated and
/// *incremental* decisions cheap — the hash-consed condition-satisfiability cache, the
/// per-database base stores, and the per-group decision memo.
///
/// [`decide_all_with`] builds a transient session per call; a service that re-decides
/// after every mutation keeps one session alive and calls [`Session::redecide_all`], so
/// the verdicts of shard groups a delta did not touch replay from the memo instead of
/// being re-searched.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    workers: usize,
    standing: Option<StandingSet>,
}

/// A verdict flip observed by [`Session::push_delta`]: standing request `request_id`
/// answered `old` before the delta and `new` after it.  Both sides are full
/// [`Decision`]s, so the notification carries the new strategy and (in a certifying
/// session) the new certificate alongside the flipped answer.
#[derive(Clone, Debug)]
pub struct VerdictFlip {
    /// The id [`Session::register_standing`] returned for the flipped request.
    pub request_id: u64,
    /// The verdict before the delta.
    pub old: Decision,
    /// The verdict after the delta.
    pub new: Decision,
}

/// What one [`Session::push_delta`] call did: the mutated database, the shape of the
/// change, the verdict flips, and how much of the standing set the subscription index
/// let the session skip.
#[derive(Clone, Debug)]
pub struct StandingUpdate {
    /// The database after the delta (the standing set's new binding).
    pub db: CDatabase,
    /// Which tables and shard groups the delta changed (see [`pw_core::DbDelta`]).
    pub change: DbDelta,
    /// One event per standing request whose *answer* changed.  Re-decisions that
    /// confirm the old answer are not reported.
    pub flips: Vec<VerdictFlip>,
    /// Standing requests re-decided because a dirty group could affect them.
    pub redecided: usize,
    /// Standing requests skipped outright — they did not even consult the memo.
    pub skipped: usize,
}

/// Which shard groups can change a standing request's verdict.
///
/// The subscription index maps a [`DbDelta`]'s dirty groups to the standing requests
/// that must be re-decided.  For an identity view, possibility and certainty decompose
/// per shard group over the relations their facts mention — `POSS` holds iff every
/// group covers its slice of the facts, `CERT` iff every group certainly does — so a
/// delta whose dirty groups don't own any mentioned relation cannot flip the verdict.
/// Membership, uniqueness and containment compare whole worlds; any group can flip
/// them, so they stay on every delta's re-decision list.
#[derive(Clone, Debug)]
enum Deps {
    /// Re-decide on every applied delta.
    AllGroups,
    /// Re-decide only when a dirty group owns one of these table positions (positions
    /// are stable: deltas cannot add or remove tables, and group membership is looked
    /// up against the *new* coupling graph on every delta — so a coupling delta that
    /// merges groups widens the entry's reach automatically).
    Tables(Vec<usize>),
}

#[derive(Clone, Debug)]
struct StandingEntry {
    id: u64,
    /// The request as registered (views bound to the registration-time database).
    request: DecisionRequest,
    /// Does the request's view (or containment left) track the standing database?
    rebind_left: bool,
    /// Does the containment right-hand view track the standing database?
    rebind_right: bool,
    deps: Deps,
    last: Decision,
}

#[derive(Debug)]
struct StandingSet {
    db: CDatabase,
    next_id: u64,
    entries: Vec<StandingEntry>,
}

impl Session {
    /// A session for batches of roughly `cfg.threads` concurrent requests.
    pub fn new(cfg: &EngineConfig) -> Self {
        Session::sized(cfg, cfg.threads)
    }

    /// A session sized for batches of about `expected_batch` requests: `cfg.threads` is
    /// split between concurrent requests and threads inside each request's search,
    /// exactly as [`decide_all_with`] splits it.
    pub fn sized(cfg: &EngineConfig, expected_batch: usize) -> Self {
        let workers = cfg.threads.min(expected_batch.max(1)).max(1);
        let threads_per_request = (cfg.threads / workers).max(1);
        let mut inner_cfg = cfg.clone();
        inner_cfg.threads = threads_per_request;
        Session {
            engine: Engine::new(inner_cfg),
            workers,
            standing: None,
        }
    }

    /// A session whose decisions carry certificates: same answers, same strategies, same
    /// memo keys as an uncertified session over [`EngineConfig::certified`]`(*cfg)`, but
    /// every [`DecisionOutcome`] comes back with evidence the independent checker
    /// `pw_check` verifies in polynomial time, and the memo stores certificates beside
    /// the per-group verdicts so replayed groups stay auditable after deltas.
    pub fn certifying(cfg: &EngineConfig, expected_batch: usize) -> Self {
        Session::sized(&cfg.clone().certified(), expected_batch)
    }

    /// The session's engine (shared caches, memo statistics).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Decide every request on the session's engine.  Answers are positionally aligned
    /// with the input and schedule-independent; per-group verdicts populate the
    /// decision memo for later re-decisions.
    pub fn decide_all(&self, requests: &[DecisionRequest]) -> Vec<DecisionOutcome> {
        run_batch(requests, &self.engine, self.workers)
    }

    /// [`Session::decide_all`] with graceful degradation: requests that fail with
    /// [`DecisionError::BudgetExceeded`] are re-decided under a geometrically
    /// escalated budget (×4 per pass, up to `max_retries` extra passes), and the
    /// session's configured budget is restored afterwards.
    ///
    /// Soundness: budget-exceeded outcomes are **never** memoized (only definite
    /// verdicts enter the decision memo), so a retried search cannot replay a verdict
    /// computed under the starved budget — the escalated pass searches afresh and its
    /// answer (and certificate) is bit-identical to a single run under the larger
    /// budget.  Other errors — deadline, cancellation, worker panic — are *not*
    /// retried: more budget would not change them.
    pub fn decide_all_with_retry(
        &mut self,
        requests: &[DecisionRequest],
        max_retries: u32,
    ) -> Vec<DecisionOutcome> {
        let mut outcomes = run_batch(requests, &self.engine, self.workers);
        let original = self.engine.config().budget;
        let mut budget = original;
        for _ in 0..max_retries {
            let starved: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter(|(_, o)| matches!(o.answer, Err(DecisionError::BudgetExceeded)))
                .map(|(i, _)| i)
                .collect();
            if starved.is_empty() {
                break;
            }
            budget = Budget(budget.0.saturating_mul(4));
            self.engine.set_budget(budget);
            let retry: Vec<DecisionRequest> =
                starved.iter().map(|&i| requests[i].clone()).collect();
            for (slot, outcome) in
                starved
                    .into_iter()
                    .zip(run_batch(&retry, &self.engine, self.workers))
            {
                outcomes[slot] = outcome;
            }
        }
        self.engine.set_budget(original);
        outcomes
    }

    /// [`Session::decide_all`] under a per-batch wall-clock deadline: every request's
    /// search resolves `deadline` to an absolute instant when it starts, and a search
    /// that outlives it reports [`DecisionError::DeadlineExceeded`].  The session's
    /// configured deadline is restored afterwards, so interleaved un-deadlined batches
    /// are unaffected.  Sound for a memoizing session: only definite verdicts enter the
    /// decision memo, so a deadline-exceeded outcome can never replay later.
    pub fn decide_all_within(
        &mut self,
        requests: &[DecisionRequest],
        deadline: std::time::Duration,
    ) -> Vec<DecisionOutcome> {
        let configured = self.engine.config().deadline;
        self.engine.set_deadline(Some(deadline));
        let outcomes = run_batch(requests, &self.engine, self.workers);
        self.engine.set_deadline(configured);
        outcomes
    }

    /// Apply `delta` to `prev` and re-decide `requests` against the mutated database.
    ///
    /// Every request whose view is phrased against `prev` is re-bound to the new
    /// database; the per-shard dispatchers then replay memoized verdicts for the shard
    /// groups the delta did not touch (carried over by [`pw_core::CDatabase::apply`]
    /// with their cache identity intact) and re-search only the dirty groups — a
    /// condition-coupled dirty group falls back to a fresh joint search of that group,
    /// so answers stay bit-identical to a from-scratch decide.  Cache entries keyed by
    /// the retired database version (and by dissolved shard groups) are dropped so a
    /// long-lived session does not accumulate stale state.
    pub fn redecide_all(
        &self,
        prev: &CDatabase,
        delta: &Delta,
        requests: &[DecisionRequest],
    ) -> Result<Redecision, DeltaError> {
        let (db, change) = prev.apply(delta)?;
        if !change.is_noop() {
            // Retire the caches of everything the delta dissolved: old shard groups
            // that no longer appear in the new graph, and the previous joint value.
            for old in prev.shard_groups() {
                let survives = db
                    .shard_groups()
                    .iter()
                    .any(|new| new.database() == old.database());
                if !survives {
                    self.engine.retire_database(old.database());
                }
            }
            self.engine.retire_database(prev);
            // The SatCache is keyed by condition, not database: purge only the
            // conditions the retired value no longer shares with the live one.
            self.engine.retire_conditions(prev, &db);
        }
        let rebound: Vec<DecisionRequest> = requests
            .iter()
            .map(|r| rebind_request(r, prev, &db))
            .collect();
        // Pin the memo for the whole replay batch: a bounded memo must not evict a
        // carried-over verdict between the delta and the request that replays it.
        let replay_pin = self.engine.pin_memo();
        let outcomes = run_batch(&rebound, &self.engine, self.workers);
        drop(replay_pin);
        Ok(Redecision {
            db,
            change,
            outcomes,
        })
    }

    /// Register `requests` as **standing queries** over `db` and decide their
    /// baselines.  Returns one id per request (aligned positionally) and the baseline
    /// outcomes; subsequent [`Session::push_delta`] calls re-decide only the registered
    /// requests a delta can affect and report [`VerdictFlip`]s for answers that
    /// changed.
    ///
    /// The first registration binds the session's standing set to `db`; later
    /// registrations join the live set — if the set's database has since moved on via
    /// deltas, requests phrased against the stale `db` are re-bound to the current
    /// value before their baselines are decided.
    pub fn register_standing(
        &mut self,
        db: &CDatabase,
        requests: &[DecisionRequest],
    ) -> (Vec<u64>, Vec<DecisionOutcome>) {
        if self.standing.is_none() {
            self.standing = Some(StandingSet {
                db: db.clone(),
                next_id: 1,
                entries: Vec::new(),
            });
        }
        let set = self.standing.as_mut().expect("just initialized");
        let mut ids = Vec::with_capacity(requests.len());
        let mut flags = Vec::with_capacity(requests.len());
        let mut bound = Vec::with_capacity(requests.len());
        for request in requests {
            let (left_view, right_view) = match request {
                DecisionRequest::Containment { left, right } => (left, Some(right)),
                DecisionRequest::Membership { view, .. }
                | DecisionRequest::Uniqueness { view, .. }
                | DecisionRequest::Possibility { view, .. }
                | DecisionRequest::Certainty { view, .. } => (view, None),
            };
            let rebind_left = left_view.db == *db;
            let rebind_right = right_view.is_some_and(|v| v.db == *db);
            flags.push((rebind_left, rebind_right));
            bound.push(rebind_standing(request, rebind_left, rebind_right, &set.db));
        }
        let replay_pin = self.engine.pin_memo();
        let baselines = run_batch(&bound, &self.engine, self.workers);
        drop(replay_pin);
        for ((request, &(rebind_left, rebind_right)), last) in
            requests.iter().zip(&flags).zip(&baselines)
        {
            let id = set.next_id;
            set.next_id += 1;
            ids.push(id);
            set.entries.push(StandingEntry {
                id,
                deps: deps_of(request, db),
                request: request.clone(),
                rebind_left,
                rebind_right,
                last: last.clone(),
            });
        }
        (ids, baselines)
    }

    /// Apply `delta` to the standing set's database and re-decide **only the standing
    /// requests the delta can affect**, reporting a [`VerdictFlip`] for each one whose
    /// answer changed.
    ///
    /// This is [`Session::redecide_all`] specialised for subscriptions: where
    /// `redecide_all` replays every request (clean groups from the memo, dirty groups
    /// re-searched), `push_delta` consults the subscription index first — a standing
    /// request none of whose dependency groups are dirty is *skipped outright*, paying
    /// neither the memo probes nor the dirty-group re-search.  Affected requests are
    /// re-decided exactly like `redecide_all` would, so their answers (strategies,
    /// certificates) are bit-identical to a full replay.
    ///
    /// # Panics
    ///
    /// If no standing set exists — call [`Session::register_standing`] first.
    pub fn push_delta(&mut self, delta: &Delta) -> Result<StandingUpdate, DeltaError> {
        let set = self
            .standing
            .as_mut()
            .expect("push_delta requires a prior register_standing");
        let prev = set.db.clone();
        let (db, change) = prev.apply(delta)?;
        if change.is_noop() {
            set.db = db.clone();
            return Ok(StandingUpdate {
                db,
                change,
                flips: Vec::new(),
                redecided: 0,
                skipped: set.entries.len(),
            });
        }
        // Retire dissolved caches exactly as redecide_all does.
        for old in prev.shard_groups() {
            let survives = db
                .shard_groups()
                .iter()
                .any(|new| new.database() == old.database());
            if !survives {
                self.engine.retire_database(old.database());
            }
        }
        self.engine.retire_database(&prev);
        self.engine.retire_conditions(&prev, &db);

        // The subscription index: dirty groups → affected standing requests.  Group
        // ownership is resolved against the *new* graph, so merges widen entries'
        // reach on the delta that merges them.
        let group_of = db.shard_group_index();
        let dirty: std::collections::BTreeSet<usize> =
            change.dirty_groups.iter().copied().collect();
        let affected: Vec<usize> = set
            .entries
            .iter()
            .enumerate()
            .filter(|(_, entry)| match &entry.deps {
                Deps::AllGroups => true,
                Deps::Tables(positions) => positions
                    .iter()
                    .any(|&p| group_of.get(p).is_some_and(|g| dirty.contains(g))),
            })
            .map(|(i, _)| i)
            .collect();

        let rebound: Vec<DecisionRequest> = affected
            .iter()
            .map(|&i| {
                let entry = &set.entries[i];
                rebind_standing(&entry.request, entry.rebind_left, entry.rebind_right, &db)
            })
            .collect();
        let replay_pin = self.engine.pin_memo();
        let outcomes = run_batch(&rebound, &self.engine, self.workers);
        drop(replay_pin);

        let mut flips = Vec::new();
        for (&i, outcome) in affected.iter().zip(outcomes) {
            let entry = &mut set.entries[i];
            if entry.last.answer != outcome.answer {
                flips.push(VerdictFlip {
                    request_id: entry.id,
                    old: entry.last.clone(),
                    new: outcome.clone(),
                });
            }
            entry.last = outcome;
        }
        let skipped = set.entries.len() - affected.len();
        set.db = db.clone();
        Ok(StandingUpdate {
            db,
            change,
            flips,
            redecided: affected.len(),
            skipped,
        })
    }

    /// The database the standing set is currently bound to, if one is registered.
    pub fn standing_db(&self) -> Option<&CDatabase> {
        self.standing.as_ref().map(|set| &set.db)
    }

    /// Number of registered standing requests.
    pub fn standing_len(&self) -> usize {
        self.standing.as_ref().map_or(0, |set| set.entries.len())
    }

    /// The current verdict of standing request `id`, if registered.
    pub fn standing_outcome(&self, id: u64) -> Option<&DecisionOutcome> {
        self.standing
            .as_ref()?
            .entries
            .iter()
            .find(|entry| entry.id == id)
            .map(|entry| &entry.last)
    }
}

/// Which groups can flip `request`'s verdict (see [`Deps`]).  Localization applies only
/// to possibility/certainty over an *identity* view of the standing database itself;
/// anything else conservatively depends on every group.  Facts in relations the
/// database does not store are omitted: no delta can change their (constant)
/// contribution, because deltas cannot add relations.
fn deps_of(request: &DecisionRequest, db: &CDatabase) -> Deps {
    let (view, facts) = match request {
        DecisionRequest::Possibility { view, facts }
        | DecisionRequest::Certainty { view, facts } => (view, facts),
        _ => return Deps::AllGroups,
    };
    if !view.query.is_identity() || view.db != *db {
        return Deps::AllGroups;
    }
    let mut positions: Vec<usize> = facts
        .iter()
        .filter(|(_, relation)| !relation.is_empty())
        .filter_map(|(name, _)| db.table_position(name))
        .collect();
    positions.sort_unstable();
    positions.dedup();
    Deps::Tables(positions)
}

/// Rebind the views flagged as tracking the standing database to `db`,
/// unconditionally.  Unlike [`rebind_request`] this does not compare against the
/// previous database value: an entry skipped across several deltas is still bound to
/// an older version, and must jump straight to the current one.
fn rebind_standing(
    request: &DecisionRequest,
    rebind_left: bool,
    rebind_right: bool,
    db: &CDatabase,
) -> DecisionRequest {
    let rebind = |view: &View, flag: bool| -> View {
        if flag {
            View::new(view.query.clone(), db.clone())
        } else {
            view.clone()
        }
    };
    match request {
        DecisionRequest::Membership { view, instance } => DecisionRequest::Membership {
            view: rebind(view, rebind_left),
            instance: instance.clone(),
        },
        DecisionRequest::Uniqueness { view, instance } => DecisionRequest::Uniqueness {
            view: rebind(view, rebind_left),
            instance: instance.clone(),
        },
        DecisionRequest::Containment { left, right } => DecisionRequest::Containment {
            left: rebind(left, rebind_left),
            right: rebind(right, rebind_right),
        },
        DecisionRequest::Possibility { view, facts } => DecisionRequest::Possibility {
            view: rebind(view, rebind_left),
            facts: facts.clone(),
        },
        DecisionRequest::Certainty { view, facts } => DecisionRequest::Certainty {
            view: rebind(view, rebind_left),
            facts: facts.clone(),
        },
    }
}

/// Convenience one-shot [`Session::redecide_all`] with all cores and the default
/// [`Budget`].  A fresh session has an empty memo, so this pays a from-scratch decide;
/// the incremental win comes from keeping one [`Session`] across the decide/re-decide
/// sequence.
pub fn redecide_all(
    prev: &CDatabase,
    delta: &Delta,
    requests: &[DecisionRequest],
) -> Result<Redecision, DeltaError> {
    Session::sized(&EngineConfig::parallel(Budget::default()), requests.len())
        .redecide_all(prev, delta, requests)
}

/// Re-point a request's view(s) from `prev` to `next`; views over other databases are
/// left alone.
fn rebind_request(
    request: &DecisionRequest,
    prev: &CDatabase,
    next: &CDatabase,
) -> DecisionRequest {
    let rebind = |view: &View| -> View {
        if view.db == *prev {
            View::new(view.query.clone(), next.clone())
        } else {
            view.clone()
        }
    };
    match request {
        DecisionRequest::Membership { view, instance } => DecisionRequest::Membership {
            view: rebind(view),
            instance: instance.clone(),
        },
        DecisionRequest::Uniqueness { view, instance } => DecisionRequest::Uniqueness {
            view: rebind(view),
            instance: instance.clone(),
        },
        DecisionRequest::Containment { left, right } => DecisionRequest::Containment {
            left: rebind(left),
            right: rebind(right),
        },
        DecisionRequest::Possibility { view, facts } => DecisionRequest::Possibility {
            view: rebind(view),
            facts: facts.clone(),
        },
        DecisionRequest::Certainty { view, facts } => DecisionRequest::Certainty {
            view: rebind(view),
            facts: facts.clone(),
        },
    }
}

/// Decide one request behind the per-request isolation boundary: a panic anywhere in
/// the request's search — or injected by [`crate::FaultPlan::panic_on_request`] at
/// this batch position — becomes [`DecisionError::WorkerPanicked`] for this request
/// alone.  Sibling requests in the batch are untouched, and the engine's caches stay
/// usable (no engine lock is held across the unwind; poisoned outcome slots are
/// recovered by the caller).
fn guarded_outcome(request: &DecisionRequest, engine: &Engine, index: usize) -> DecisionOutcome {
    catch_unwind(AssertUnwindSafe(|| {
        if let Some(faults) = &engine.config().faults {
            if faults.panic_on_request == Some(index) {
                panic!(
                    "fault injection (seed {}): forced panic on request {index}",
                    faults.seed
                );
            }
        }
        request.decide(engine)
    }))
    .unwrap_or_else(|payload| {
        let message = panic_message(payload.as_ref());
        // Best effort: the dispatch-table lookup runs over the same view the search
        // just panicked on, so it gets its own boundary.
        let strategy =
            catch_unwind(AssertUnwindSafe(|| request.strategy())).unwrap_or(Strategy::Backtracking);
        Decision::of(Err(DecisionError::WorkerPanicked(message)), strategy)
    })
}

/// The shared worker pool behind [`Session::decide_all`] and [`decide_all_with`].
fn run_batch(
    requests: &[DecisionRequest],
    engine: &Engine,
    workers: usize,
) -> Vec<DecisionOutcome> {
    if requests.is_empty() {
        return Vec::new();
    }
    let workers = workers.min(requests.len()).max(1);
    if workers == 1 {
        return requests
            .iter()
            .enumerate()
            .map(|(i, request)| guarded_outcome(request, engine, i))
            .collect();
    }

    // Queue order: group-weighted work items descending (LPT scheduling).  A request
    // that fans out across many shard groups is the longest job in the batch; starting
    // it first keeps the tail of the batch from serialising behind it.  Ties break by
    // request index so the queue order — and therefore worker assignment — is a pure
    // function of the batch, not of sort internals.  Outcomes stay positionally
    // aligned — only the execution order changes, and answers are
    // schedule-independent (see the engine's determinism notes).
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_unstable_by_key(|&i| (std::cmp::Reverse(requests[i].work_items()), i));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<DecisionOutcome>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let queued = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = order.get(queued) else {
                    return;
                };
                let outcome = guarded_outcome(&requests[i], engine, i);
                *lock_unpoisoned(&slots[i]) = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every request was decided")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::{CDatabase, CTable, CTuple};
    use pw_relational::rel;

    fn demo_db() -> CDatabase {
        let mut g = VarGen::new();
        let x = g.fresh();
        CDatabase::single(
            CTable::new(
                "R",
                1,
                Conjunction::truth(),
                [
                    CTuple::of_terms([Term::constant(1)]),
                    CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::eq(x, 0)])),
                ],
            )
            .unwrap(),
        )
    }

    fn demo_requests() -> Vec<DecisionRequest> {
        let view = View::identity(demo_db());
        vec![
            DecisionRequest::Possibility {
                view: view.clone(),
                facts: Instance::single("R", rel![[1], [2]]),
            },
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: Instance::single("R", rel![[1]]),
            },
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: Instance::single("R", rel![[2]]),
            },
            DecisionRequest::Membership {
                view: view.clone(),
                instance: Instance::single("R", rel![[1]]),
            },
            DecisionRequest::Uniqueness {
                view: view.clone(),
                instance: Instance::single("R", rel![[1]]),
            },
            DecisionRequest::Containment {
                left: view.clone(),
                right: view,
            },
        ]
    }

    fn expected() -> Vec<bool> {
        // (1,2) possible; (1) certain; (2) not certain; {(1)} is a member; {(1)} is not
        // the unique world; every view contains itself.
        vec![true, true, false, true, false, true]
    }

    #[test]
    fn batch_matches_single_shot_answers() {
        let requests = demo_requests();
        let outcomes = decide_all_with(&requests, &EngineConfig::sequential(Budget(1_000_000)));
        let answers: Vec<bool> = outcomes
            .iter()
            .map(|o| *o.answer.as_ref().unwrap())
            .collect();
        assert_eq!(answers, expected());
    }

    #[test]
    fn batch_is_schedule_independent() {
        let requests = demo_requests();
        for threads in [1, 2, 3, 8] {
            let cfg = EngineConfig::with_threads(threads, Budget(1_000_000));
            let outcomes = decide_all_with(&requests, &cfg);
            let answers: Vec<bool> = outcomes
                .iter()
                .map(|o| *o.answer.as_ref().unwrap())
                .collect();
            assert_eq!(answers, expected(), "answers with {threads} threads");
        }
    }

    #[test]
    fn batch_reports_strategies() {
        let requests = demo_requests();
        let outcomes = decide_all(&requests);
        assert_eq!(outcomes.len(), requests.len());
        assert_eq!(outcomes[0].strategy, Strategy::Backtracking);
        assert_eq!(outcomes[1].strategy, Strategy::Backtracking);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(decide_all(&[]).is_empty());
    }

    /// Two decoupled relations, a certainty request localized to each: a delta touching
    /// only one relation re-decides one request and skips the other, and a flip is
    /// reported exactly when the answer changes.
    #[test]
    fn push_delta_skips_unaffected_standing_requests_and_reports_flips() {
        let db = CDatabase::new([
            CTable::codd("A", 1, [vec![Term::constant(1)]]).unwrap(),
            CTable::codd("B", 1, [vec![Term::constant(2)]]).unwrap(),
        ]);
        let view = View::identity(db.clone());
        let requests = vec![
            DecisionRequest::Certainty {
                view: view.clone(),
                facts: Instance::single("A", rel![[1]]),
            },
            DecisionRequest::Certainty {
                view,
                facts: Instance::single("B", rel![[2]]),
            },
        ];
        let mut session = Session::sized(&EngineConfig::sequential(Budget(1_000_000)), 2);
        let (ids, baselines) = session.register_standing(&db, &requests);
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(baselines.len(), 2);
        assert!(baselines.iter().all(|b| b.answer == Ok(true)));

        // Retract A's only row: the A-certainty flips true→false, the B-certainty is
        // skipped without consulting anything.
        let update = session
            .push_delta(&Delta::new().retract("A", 0))
            .expect("delta applies");
        assert_eq!((update.redecided, update.skipped), (1, 1));
        assert_eq!(update.flips.len(), 1);
        assert_eq!(update.flips[0].request_id, ids[0]);
        assert_eq!(update.flips[0].old.answer, Ok(true));
        assert_eq!(update.flips[0].new.answer, Ok(false));
        assert_eq!(session.standing_outcome(ids[0]).unwrap().answer, Ok(false));
        assert_eq!(session.standing_outcome(ids[1]).unwrap().answer, Ok(true));

        // Re-insert it: flips back.  The B entry — skipped across both deltas — still
        // answers correctly when its own relation finally changes.
        let update = session
            .push_delta(&Delta::new().insert("A", CTuple::of_terms([Term::constant(1)])))
            .expect("delta applies");
        assert_eq!(update.flips.len(), 1);
        assert_eq!(update.flips[0].new.answer, Ok(true));
        let update = session
            .push_delta(&Delta::new().retract("B", 0))
            .expect("delta applies");
        assert_eq!((update.redecided, update.skipped), (1, 1));
        assert_eq!(update.flips[0].request_id, ids[1]);
        assert_eq!(update.flips[0].new.answer, Ok(false));

        // A no-op delta skips everything.
        let update = session.push_delta(&Delta::new()).expect("empty delta");
        assert!(update.change.is_noop());
        assert_eq!((update.redecided, update.skipped), (0, 2));
        assert!(update.flips.is_empty());
    }
}
