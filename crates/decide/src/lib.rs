//! # `pw-decide` — decision procedures for incomplete information databases
//!
//! This crate implements the five computational problems of Section 2.3 of the paper, with
//! the specialised polynomial algorithms of the upper-bound theorems and complete
//! (worst-case exponential) general procedures for the provably hard cases:
//!
//! | problem | module | polynomial cases (paper) |
//! |---|---|---|
//! | `MEMB(q)` — membership | [`membership`] | Codd-tables via bipartite matching (Thm 3.1(1)) |
//! | `UNIQ(q₀)` — uniqueness | [`uniqueness`] | g-tables (Thm 3.2(1)); pos. existential views of e-tables (Thm 3.2(2)) |
//! | `CONT(q₀,q)` — containment | [`containment`] | g-tables ⊆ tables via freezing (Thm 4.1(3)) |
//! | `POSS(k,q)` / `POSS(*,q)` — possibility | [`possibility`] | tables (Thm 5.1(1)); bounded, pos. existential on c-tables (Thm 5.2(1)) |
//! | `CERT(k,q)` / `CERT(*,q)` — certainty | [`certainty`] | DATALOG on g-tables via naive evaluation (Thm 5.3(1)) |
//!
//! Every public entry point either *is* one of the paper's polynomial algorithms or is an
//! exact procedure within the problem's complexity class (NP / coNP / Π₂ᵖ); the
//! [`common::Strategy`] value reported alongside answers tells callers (and the benchmark
//! harness) which path ran.  General procedures take a [`common::Budget`] and return
//! [`common::BudgetExceeded`] instead of running away — the exponential growth they exhibit
//! on the reduction-generated workloads is precisely the behaviour the benchmark suite
//! measures.
//!
//! ## Parallel execution
//!
//! The worst-case exponential paths run on a shared parallel substrate, [`engine`]:
//! search nodes with cheaply-forkable constraint stores, an explicit frontier drained by
//! `std::thread::scope` workers, an atomic shared budget and first-witness cancellation.
//! Each problem module exposes a `decide_with(…, &Engine)` variant; the batched front
//! door [`batch::decide_all`] decides many requests at once, amortizing per-database
//! preprocessing through the engine's caches.  When a database's coupling graph splits
//! ([`pw_core::CDatabase::shard_groups`]), the dispatchers fan the request out across
//! the independent shard groups ([`common::Strategy::PerShard`]) and merge with the
//! problem's combinator, falling back to the joint search for condition-coupled groups.
//! See `docs/BOOK.md` (sections "The parallel engine" and "Shard groups and the
//! coupling graph") for the invariants — budget semantics and determinism of answers
//! under parallelism.

#![warn(missing_docs)]

pub mod batch;
pub mod certainty;
pub(crate) mod certify;
pub mod common;
pub mod containment;
pub mod engine;
pub mod membership;
pub mod possibility;
pub mod search;
pub mod uniqueness;

pub use batch::{
    decide_all, decide_all_with, redecide_all, DecisionOutcome, DecisionRequest, Redecision,
    Session, StandingUpdate, VerdictFlip,
};
pub use common::{
    Budget, BudgetExceeded, CancelToken, Decision, DecisionError, FaultPlan, Strategy,
};
pub use engine::{Engine, EngineConfig, EngineStats, MemoOp, MemoStats, SharedBudget};
pub use pw_core::{Certificate, PairCert};
