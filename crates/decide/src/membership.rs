//! The membership problem `MEMB(q)`: is a given complete instance one of the possible
//! worlds represented by (a view of) a c-table database?
//!
//! * [`codd_matching`] — the PTIME algorithm of Theorem 3.1(1) for Codd-tables, a literal
//!   implementation of the paper's reduction to maximum bipartite matching (steps a–e).
//! * [`backtracking`] — a complete NP procedure for arbitrary c-tables: assign every row
//!   either to a fact of the instance or to "absent" (falsifying one atom of its local
//!   condition), propagating equality/inequality constraints through a union–find store.
//! * [`view_membership`] — `MEMB(q)` for views.  When `q` is a vector of (≠-extended)
//!   positive existential queries the view is first converted to an equivalent c-table
//!   database with the c-table algebra and [`backtracking`] is used; otherwise the
//!   canonical-valuation enumeration of Proposition 2.1 decides the problem.
//! * [`decide`] — the dispatching entry point that picks the strategy the paper's upper
//!   bounds prescribe.

use crate::certify;
use crate::common::{evaluation_delta, Budget, BudgetCounter, Decision, DecisionError, Strategy};
use crate::engine::{ChoiceNode, ChoiceSearch, Ctx, Engine, EngineConfig};
use pw_condition::{Atom, ConstraintSet, Term};
use pw_core::{CDatabase, CTable, Certificate, View};
use pw_relational::{Instance, Sym};
use pw_solvers::matching::{maximum_matching, BipartiteGraph};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Decide `MEMB(-)`: is `instance` in `rep(db)`?  Dispatches to the matching algorithm for
/// Codd-table databases, to the shard-group decomposition when the coupling graph splits,
/// and to the joint backtracking procedure otherwise.
pub fn decide(db: &CDatabase, instance: &Instance, budget: Budget) -> Result<bool, DecisionError> {
    match strategy(db) {
        Strategy::CoddMatching => Ok(codd_matching(db, instance)),
        Strategy::PerShard { .. } => per_shard(db, instance, budget),
        _ => backtracking(db, instance, budget),
    }
}

/// The strategy [`decide`] will use for a database.
pub fn strategy(db: &CDatabase) -> Strategy {
    strategy_with(db, true)
}

/// [`decide`] with the shard-group decomposition forced off — the joint dispatch the
/// callers that must mirror the pre-decomposition behaviour (e.g. the joint uniqueness
/// complement) rely on.  The backtracking arm runs on the engine's scheduler, so the
/// joint complement parallelizes within its single tree.
pub(crate) fn decide_joint_with(
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    match strategy_with(db, false) {
        Strategy::CoddMatching => Ok(codd_matching(db, instance)),
        _ => backtracking_with(db, instance, engine),
    }
}

/// [`strategy`] with the shard-group decomposition toggled — engine-backed callers pass
/// [`crate::EngineConfig::per_shard`] so the label always matches the path that runs.
fn strategy_with(db: &CDatabase, per_shard: bool) -> Strategy {
    if db.is_decoupled_codd() {
        Strategy::CoddMatching
    } else {
        let groups = db.shard_groups().len();
        if per_shard && groups > 1 {
            Strategy::PerShard { groups }
        } else {
            Strategy::Backtracking
        }
    }
}

/// `MEMB(-)` decomposed over the shard groups: `rep(db)` is the product of the groups'
/// representations (variable-disjoint groups choose their valuations independently), so
/// `instance ∈ rep(db)` iff each group's slice of the instance is a member of that
/// group's representation — a conjunction of small searches instead of one joint tree
/// that re-explores every earlier group's row assignments whenever a later group fails.
/// Each group dispatches to its own best algorithm (matching for decoupled-Codd groups,
/// backtracking otherwise); one budget counter is threaded through the conjunction, so
/// `budget` still bounds the total node count.
pub fn per_shard(
    db: &CDatabase,
    instance: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    // An unknown or arity-mismatched relation is not a member of anything — the same
    // outcome `schema_compatible` gives the joint searches.
    let Some(parts) = crate::engine::split_by_group(db, instance) else {
        return Ok(false);
    };
    let mut counter = budget.counter();
    for (group, part) in db.shard_groups().iter().zip(&parts) {
        if !per_shard_group(group.database(), part, &mut counter)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// [`per_shard`] against an [`Engine`]: the per-group verdicts go through the engine's
/// decision memo, so a re-decide after a delta ([`pw_core::CDatabase::apply`]) replays
/// the untouched groups and only re-searches the dirty ones.
pub(crate) fn per_shard_with(
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    let Some(parts) = crate::engine::split_by_group(db, instance) else {
        return Ok(false);
    };
    let ctx = engine.ctx();
    for (group, part) in db.shard_groups().iter().zip(&parts) {
        let sub = group.database();
        let ok = engine.memo_decide(crate::engine::MemoOp::Member, sub, part, None, || {
            if sub.is_decoupled_codd() {
                Ok(codd_matching(sub, part))
            } else {
                // One budget pool across the conjunction, a fresh cancellation scope per
                // group: a witness in one group must not stop the next group's search.
                backtracking_engine(sub, part, engine, &ctx.fork())
            }
        })?;
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

/// One group's membership sub-decision: matching for decoupled-Codd groups,
/// backtracking (against the threaded budget counter) otherwise.
fn per_shard_group(
    sub: &CDatabase,
    part: &Instance,
    counter: &mut BudgetCounter,
) -> Result<bool, DecisionError> {
    if sub.is_decoupled_codd() {
        Ok(codd_matching(sub, part))
    } else {
        backtracking_counted(sub, part, counter)
    }
}

/// Quick structural check shared by all algorithms: the instance may not populate relations
/// the database does not have, and arities must agree.
fn schema_compatible(db: &CDatabase, instance: &Instance) -> bool {
    for (name, rel) in instance.iter() {
        if rel.is_empty() {
            continue;
        }
        match db.table(name) {
            Some(t) if t.arity() == rel.arity() => {}
            _ => return false,
        }
    }
    true
}

/// Theorem 3.1(1): membership for Codd-tables via maximum bipartite matching.
///
/// For every table independently (Codd-tables have no conditions and no shared variables):
/// left vertices are the instance facts `uᵢ`, right vertices the table rows `vⱼ`, with an
/// edge when some valuation maps the row onto the fact.  The instance is a possible world
/// iff (c) every row is connected to at least one fact and (e) a maximum matching saturates
/// the facts.
pub fn codd_matching(db: &CDatabase, instance: &Instance) -> bool {
    if !schema_compatible(db, instance) {
        return false;
    }
    for table in db.tables() {
        let rel = instance.relation_or_empty(table.name(), table.arity());
        // Intern the facts once at the front door; the quadratic edge loop below then
        // compares machine-word ids only.
        let facts: Vec<Vec<Sym>> = rel
            .iter()
            .map(|f| crate::engine::intern_fact(db, f))
            .collect();
        // Step (a): the two node sets.  Steps (b)-(c): edges and the "every row connected"
        // check.  Step (d)-(e): maximum matching must have cardinality n = #facts.
        let mut graph = BipartiteGraph::new(facts.len(), table.len());
        for (j, row) in table.tuples().iter().enumerate() {
            let mut connected = false;
            for (i, fact) in facts.iter().enumerate() {
                if row_unifies_with_fact(row.terms.as_slice(), fact) {
                    graph.add_edge(i, j);
                    connected = true;
                }
            }
            if !connected {
                // Step (c): a row that cannot be instantiated to any fact of the instance
                // would necessarily produce a fact outside it.
                return false;
            }
        }
        if table.is_empty() && !facts.is_empty() {
            return false;
        }
        let matching = maximum_matching(&graph);
        if matching.cardinality() != facts.len() {
            return false;
        }
    }
    true
}

/// Can some valuation map this (Codd) row onto the (interned) fact?  Because every
/// variable occurs at most once in a Codd-table, positions are independent: constants must
/// match literally and variables can take any value.
fn row_unifies_with_fact(terms: &[Term], fact: &[Sym]) -> bool {
    terms.len() == fact.len()
        && terms.iter().zip(fact.iter()).all(|(t, c)| match t {
            Term::Const(tc) => tc == c,
            Term::Var(_) => true,
        })
}

/// A complete NP procedure for `MEMB(-)` on arbitrary c-table databases.
///
/// Every row is either mapped onto an instance fact of its relation — adding the equalities
/// `term_i = fact_i` and the row's local condition to the constraint store — or declared
/// absent by falsifying one atom of its local condition.  A candidate assignment is a
/// witness when the store stays satisfiable and every instance fact is covered by at least
/// one row.  The search is exponential in the worst case (the problem is NP-complete
/// already for e-tables and i-tables, Theorem 3.1(2,3)) but the constraint propagation
/// prunes heavily on practical inputs.
pub fn backtracking(
    db: &CDatabase,
    instance: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    let mut counter = budget.counter();
    backtracking_counted(db, instance, &mut counter)
}

/// [`backtracking`] against an externally owned counter, so the per-shard conjunction
/// can thread one budget pool through consecutive group searches.
fn backtracking_counted(
    db: &CDatabase,
    instance: &Instance,
    counter: &mut BudgetCounter,
) -> Result<bool, DecisionError> {
    if !schema_compatible(db, instance) {
        return Ok(false);
    }
    let mut base = ConstraintSet::new();
    for table in db.tables() {
        if !base.assert_conjunction(table.global_condition()) {
            return Ok(false);
        }
    }

    // Flatten rows and facts.  Rows carry the *index* of their table so the search below
    // never resolves a relation name — machine-word addressing only (the boundary
    // resolution happened in `schema_compatible` and the fact-list build).
    struct RowRef<'a> {
        table: &'a CTable,
        row_idx: usize,
        /// Position of `table` in the database, i.e. the fact-list/coverage slot.
        t_idx: usize,
    }
    let mut rows: Vec<RowRef<'_>> = Vec::new();
    for (t_idx, table) in db.tables().iter().enumerate() {
        for row_idx in 0..table.len() {
            rows.push(RowRef {
                table,
                row_idx,
                t_idx,
            });
        }
    }
    // Facts per table (interned at the front door), indexed by table position.
    let mut fact_lists: Vec<Vec<Vec<Sym>>> = Vec::new();
    for table in db.tables() {
        let rel = instance.relation_or_empty(table.name(), table.arity());
        fact_lists.push(
            rel.iter()
                .map(|f| crate::engine::intern_fact(db, f))
                .collect(),
        );
    }
    let total_facts: usize = fact_lists.iter().map(Vec::len).sum();

    let mut coverage: Vec<Vec<usize>> = fact_lists
        .iter()
        .map(|facts| vec![0usize; facts.len()])
        .collect();

    // The shape of the search, fixed for its whole run (the mutable store, coverage and
    // budget travel as explicit parameters).
    struct SearchShape<'a> {
        rows: Vec<RowRef<'a>>,
        fact_lists: Vec<Vec<Vec<Sym>>>,
        total_facts: usize,
    }

    fn search(
        shape: &SearchShape<'_>,
        coverage: &mut Vec<Vec<usize>>,
        covered_count: usize,
        depth: usize,
        store: &mut ConstraintSet,
        counter: &mut BudgetCounter,
    ) -> Result<bool, DecisionError> {
        let (rows, fact_lists, total_facts) = (&shape.rows, &shape.fact_lists, shape.total_facts);
        counter.tick()?;
        if depth == rows.len() {
            return Ok(covered_count == total_facts);
        }
        // Pruning: each remaining row covers at most one uncovered fact.
        if total_facts - covered_count > rows.len() - depth {
            return Ok(false);
        }
        let row_ref = &rows[depth];
        let row = &row_ref.table.tuples()[row_ref.row_idx];
        let t_idx = row_ref.t_idx;
        let facts = &fact_lists[t_idx];

        // Option 1: map the row onto a fact of its relation.  Each branch forks the store
        // with an O(1) checkpoint and unwinds it on return — no clone, no allocation per
        // search node.
        for (f_idx, fact) in facts.iter().enumerate() {
            let cp = store.checkpoint();
            let mut ok = store.assert_conjunction(&row.condition);
            if ok {
                for (&term, &value) in row.terms.iter().zip(fact.iter()) {
                    if !store.assert_eq(term, Term::Const(value)) {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                store.rollback(cp);
                continue;
            }
            coverage[t_idx][f_idx] += 1;
            let newly_covered = coverage[t_idx][f_idx] == 1;
            let result = search(
                shape,
                coverage,
                covered_count + usize::from(newly_covered),
                depth + 1,
                store,
                counter,
            );
            coverage[t_idx][f_idx] -= 1;
            store.rollback(cp);
            if result? {
                return Ok(true);
            }
        }

        // Option 2: the row is absent — some atom of its local condition is falsified.
        // (A row with the trivial condition `true` can never be absent.)
        for &atom in row.condition.atoms() {
            let cp = store.checkpoint();
            let negated_ok = match atom {
                Atom::Eq(a, b) => store.assert_neq(a, b),
                Atom::Neq(a, b) => store.assert_eq(a, b),
            };
            if !negated_ok {
                store.rollback(cp);
                continue;
            }
            let result = search(shape, coverage, covered_count, depth + 1, store, counter);
            store.rollback(cp);
            if result? {
                return Ok(true);
            }
        }

        Ok(false)
    }

    let shape = SearchShape {
        rows,
        fact_lists,
        total_facts,
    };
    let mut store = base;
    search(&shape, &mut coverage, 0, 0, &mut store, counter)
}

// -- the engine-scheduled backtracking path ---------------------------------------------

/// A row of the flattened row list, as in [`backtracking_counted`].
struct MemberRow<'a> {
    table: &'a CTable,
    row_idx: usize,
    /// Position of `table` in the database, i.e. the fact-list slot.
    t_idx: usize,
}

/// One covered fact along a search path.  A persistent (Arc-linked) list replaces the
/// mutable `coverage` count matrix of the sequential search: forking a node for a thief
/// is O(1), and the "is this fact already covered?" scan is O(depth) — the same cost
/// profile as [`crate::engine`]'s `UsedRow` list in the covering search.
struct Covered {
    t_idx: usize,
    f_idx: usize,
    prev: Option<Arc<Covered>>,
}

#[derive(Clone)]
struct MemberMeta {
    depth: usize,
    /// Distinct facts covered along this path (maintained incrementally, so the leaf
    /// test is O(1)).
    covered: usize,
    trail: Option<Arc<Covered>>,
}

/// [`backtracking`] expressed as a [`ChoiceSearch`], so the engine's work-stealing
/// scheduler can parallelize a *single* condition-coupled group.  The branch order is
/// exactly [`backtracking_counted`]'s — per row, the Option-1 fact branches first, then
/// the Option-2 absence branches — and both ticks and pruning fire at the same nodes, so
/// the two implementations are indistinguishable to the budget and return identical
/// answers.
struct MemberSearch<'a> {
    rows: Vec<MemberRow<'a>>,
    /// Interned instance facts per table position.
    fact_lists: Vec<Vec<Vec<Sym>>>,
    total_facts: usize,
}

impl MemberSearch<'_> {
    fn already_covered(&self, trail: &Option<Arc<Covered>>, t_idx: usize, f_idx: usize) -> bool {
        let mut cursor = trail;
        while let Some(entry) = cursor {
            if entry.t_idx == t_idx && entry.f_idx == f_idx {
                return true;
            }
            cursor = &entry.prev;
        }
        false
    }
}

impl ChoiceSearch for MemberSearch<'_> {
    type Meta = MemberMeta;

    fn is_leaf(&self, meta: &MemberMeta) -> bool {
        meta.depth == self.rows.len() && meta.covered == self.total_facts
    }

    fn branch_count(&self, meta: &MemberMeta) -> usize {
        if meta.depth == self.rows.len() {
            // Exhausted the rows without covering every fact: a rejecting leaf.
            return 0;
        }
        // Pruning: each remaining row covers at most one uncovered fact.
        if self.total_facts - meta.covered > self.rows.len() - meta.depth {
            return 0;
        }
        let row_ref = &self.rows[meta.depth];
        let row = &row_ref.table.tuples()[row_ref.row_idx];
        self.fact_lists[row_ref.t_idx].len() + row.condition.len()
    }

    fn try_branch(
        &self,
        store: &mut ConstraintSet,
        meta: &MemberMeta,
        k: usize,
    ) -> Option<MemberMeta> {
        let row_ref = &self.rows[meta.depth];
        let row = &row_ref.table.tuples()[row_ref.row_idx];
        let t_idx = row_ref.t_idx;
        let facts = &self.fact_lists[t_idx];
        if let Some(fact) = facts.get(k) {
            // Option 1: map the row onto fact `k` of its relation.
            if !store.assert_conjunction(&row.condition) {
                return None;
            }
            for (&term, &value) in row.terms.iter().zip(fact.iter()) {
                if !store.assert_eq(term, Term::Const(value)) {
                    return None;
                }
            }
            let newly = !self.already_covered(&meta.trail, t_idx, k);
            Some(MemberMeta {
                depth: meta.depth + 1,
                covered: meta.covered + usize::from(newly),
                trail: Some(Arc::new(Covered {
                    t_idx,
                    f_idx: k,
                    prev: meta.trail.clone(),
                })),
            })
        } else {
            // Option 2: the row is absent — falsify one atom of its local condition.
            let atom = row.condition.atoms()[k - facts.len()];
            let negated_ok = match atom {
                Atom::Eq(a, b) => store.assert_neq(a, b),
                Atom::Neq(a, b) => store.assert_eq(a, b),
            };
            negated_ok.then(|| MemberMeta {
                depth: meta.depth + 1,
                covered: meta.covered,
                trail: meta.trail.clone(),
            })
        }
    }
}

/// [`backtracking`] driven by the engine's scheduler (work-stealing by default): the
/// joint NP search for one condition-coupled database, parallel within the single tree.
pub(crate) fn backtracking_with(
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    backtracking_engine(db, instance, engine, &engine.ctx())
}

/// [`backtracking_with`] against an externally owned context, so the per-shard
/// conjunction can drain one budget pool across consecutive group searches.
fn backtracking_engine(
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
    ctx: &Ctx,
) -> Result<bool, DecisionError> {
    if !schema_compatible(db, instance) {
        return Ok(false);
    }
    let Some(store) = engine.base_store(db) else {
        return Ok(false);
    };
    let mut rows: Vec<MemberRow<'_>> = Vec::new();
    for (t_idx, table) in db.tables().iter().enumerate() {
        for row_idx in 0..table.len() {
            rows.push(MemberRow {
                table,
                row_idx,
                t_idx,
            });
        }
    }
    let fact_lists: Vec<Vec<Vec<Sym>>> = db
        .tables()
        .iter()
        .map(|table| {
            instance
                .relation_or_empty(table.name(), table.arity())
                .iter()
                .map(|f| crate::engine::intern_fact(db, f))
                .collect()
        })
        .collect();
    let total_facts = fact_lists.iter().map(Vec::len).sum();
    let search = MemberSearch {
        rows,
        fact_lists,
        total_facts,
    };
    let root = ChoiceNode {
        store,
        meta: MemberMeta {
            depth: 0,
            covered: 0,
            trail: None,
        },
    };
    engine.drive_choices(&search, root, ctx)
}

/// `MEMB(q)` for a view.
///
/// If every output of the query is UCQ-shaped the view is converted to an equivalent
/// c-table database (polynomial, Theorem 5.2(1)'s construction) and [`backtracking`]
/// decides membership; otherwise we fall back to the canonical-valuation enumeration of
/// Proposition 2.1: guess a valuation σ with values in Δ ∪ Δ′ and check `q(σ(𝒯)) = I₀`.
pub fn view_membership(
    view: &View,
    instance: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    view_membership_with(
        view,
        instance,
        &Engine::new(EngineConfig::sequential(budget)),
    )
    .answer
}

/// [`view_membership`] on an explicit [`Engine`]: the generic fallback (canonical
/// valuation enumeration) runs on the engine's worker pool, and the identity and
/// UCQ-convertible paths drive the NP backtracking search through the engine's
/// work-stealing scheduler (`backtracking_with`) — a single condition-coupled group
/// parallelizes within its one search tree.
///
/// Returns a [`Decision`] carrying the answer next to the [`Strategy`] that produced
/// (or attempted) it, so the strategy survives a budget-exceeded search — the batched
/// front door labels failures without re-deriving the plan.  The view→c-table
/// conversion behind the dispatch runs exactly once per call.
pub fn view_membership_with(view: &View, instance: &Instance, engine: &Engine) -> Decision {
    match view.to_ctables() {
        Some(Ok(db)) => {
            let split = engine.config().per_shard;
            let chosen = if view.query.is_identity() {
                strategy_with(&db, split)
            } else {
                let groups = db.shard_groups().len();
                if split && groups > 1 {
                    Strategy::PerShard { groups }
                } else {
                    Strategy::Backtracking
                }
            };
            let answer = match chosen {
                Strategy::CoddMatching => Ok(codd_matching(&db, instance)),
                Strategy::PerShard { .. } => per_shard_with(&db, instance, engine),
                _ => backtracking_with(&db, instance, engine),
            };
            Decision::of(answer, chosen)
        }
        Some(Err(_)) => Decision::of(Ok(false), Strategy::Backtracking),
        None => {
            let vars: Vec<_> = view.db.variables().into_iter().collect();
            let mut delta = evaluation_delta(&view.db, instance.active_domain());
            delta.extend(view.query.constants());
            let found =
                engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
                    let world = valuation.world_of(&view.db)?;
                    let output = view.query.eval(&world);
                    output.same_facts(instance).then_some(())
                });
            Decision::of(found.map(|f| f.is_some()), Strategy::WorldEnumeration)
        }
    }
}

/// [`view_membership_with`] plus certificate extraction: the same dispatch, the same
/// answer, and — when [`crate::EngineConfig::certify`] is on — a [`Certificate`] the
/// independent checker (`pw_check`) can validate without trusting this crate.  A *yes*
/// carries the witness valuation the accepting search branch corresponds to (filled to a
/// total valuation of `view.db`; for converted views the c-table algebra guarantees
/// `q(σ(view.db)) = σ(converted)` for every total σ, so a witness over the converted
/// database certifies the view claim); a *no* carries [`Certificate::EmptyRep`] or
/// rests on the exhaustive search ([`Certificate::Exhaustive`]).
pub(crate) fn view_membership_certified(
    view: &View,
    instance: &Instance,
    engine: &Engine,
) -> Decision {
    if !engine.config().certify {
        return view_membership_with(view, instance, engine);
    }
    match view.to_ctables() {
        Some(Ok(db)) => {
            let split = engine.config().per_shard;
            let chosen = if view.query.is_identity() {
                strategy_with(&db, split)
            } else {
                let groups = db.shard_groups().len();
                if split && groups > 1 {
                    Strategy::PerShard { groups }
                } else {
                    Strategy::Backtracking
                }
            };
            let avoid = certify::avoid_set(&view.db, instance);
            let yes = |w| {
                Some(Certificate::witness(certify::valuation(
                    certify::fill_unassigned(&view.db, w, &avoid),
                )))
            };
            let (answer, cert) = match chosen {
                Strategy::CoddMatching => match certify::codd_member_witness(&db, instance) {
                    Some(w) => (Ok(true), yes(w)),
                    None => (Ok(false), Some(certify::no_world_cert(&view.db))),
                },
                Strategy::PerShard { .. } => {
                    match certified_per_shard_member(&db, instance, engine) {
                        Ok((true, Some(w))) => (Ok(true), yes(w)),
                        Ok((true, None)) => (Ok(true), None),
                        Ok((false, _)) => (Ok(false), Some(certify::no_world_cert(&view.db))),
                        Err(e) => (Err(e), None),
                    }
                }
                _ => {
                    let mut counter = engine.config().counter();
                    match certify::member_witness(&db, instance, &mut counter) {
                        Ok(Some(w)) => (Ok(true), yes(w)),
                        Ok(None) => (Ok(false), Some(certify::no_world_cert(&view.db))),
                        Err(e) => (Err(e), None),
                    }
                }
            };
            Decision::certified(answer, chosen, cert)
        }
        // Conversion error: some output relation is structurally unproducible; no world
        // matches, and the checker accepts the verdict on the exhaustiveness claim.
        Some(Err(_)) => Decision::certified(
            Ok(false),
            Strategy::Backtracking,
            Some(Certificate::Exhaustive),
        ),
        None => {
            let vars: Vec<_> = view.db.variables().into_iter().collect();
            let mut delta = evaluation_delta(&view.db, instance.active_domain());
            delta.extend(view.query.constants());
            let found =
                engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
                    let world = valuation.world_of(&view.db)?;
                    let output = view.query.eval(&world);
                    output.same_facts(instance).then(|| valuation.clone())
                });
            match found {
                Ok(Some(v)) => Decision::certified(
                    Ok(true),
                    Strategy::WorldEnumeration,
                    Some(Certificate::witness(v)),
                ),
                Ok(None) => Decision::certified(
                    Ok(false),
                    Strategy::WorldEnumeration,
                    Some(certify::no_world_cert(&view.db)),
                ),
                Err(e) => Decision::of(Err(e), Strategy::WorldEnumeration),
            }
        }
    }
}

/// Certified twin of [`per_shard_with`]: same memo keys (`MemoOp::Member` per group), but
/// entries are stored *with* their per-group certificates and the group witnesses are
/// merged into one binding over the whole converted database.
pub(crate) fn certified_per_shard_member(
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
) -> Result<(bool, Option<certify::Binding>), DecisionError> {
    certify::per_shard_witness(
        db,
        instance,
        engine,
        crate::engine::MemoOp::Member,
        |sub, part, counter| {
            if sub.is_decoupled_codd() {
                Ok(certify::codd_member_witness(sub, part))
            } else {
                certify::member_witness(sub, part, counter)
            }
        },
    )
}

/// The strategy [`view_membership`] will use.
pub fn view_strategy(view: &View) -> Strategy {
    if view.query.is_identity() {
        strategy(&view.db)
    } else {
        match view.to_ctables() {
            Some(Ok(db)) => {
                let groups = db.shard_groups().len();
                if groups > 1 {
                    Strategy::PerShard { groups }
                } else {
                    Strategy::Backtracking
                }
            }
            Some(Err(_)) => Strategy::Backtracking,
            None => Strategy::WorldEnumeration,
        }
    }
}

/// Exhaustive reference implementation (for cross-validation tests): enumerate every
/// possible world within a budget and compare.
pub fn by_enumeration(
    db: &CDatabase,
    instance: &Instance,
    budget: usize,
) -> Result<bool, DecisionError> {
    let extra: BTreeSet<_> = instance.active_domain();
    let worlds = pw_core::rep::PossibleWorlds::new(db)
        .with_extra_constants(extra)
        .enumerate(budget)
        .map_err(|_| DecisionError::BudgetExceeded)?;
    Ok(worlds.iter().any(|w| w.same_facts(instance)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Conjunction, VarGen};
    use pw_core::CTuple;
    use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};
    use pw_relational::rel;

    fn budget() -> Budget {
        Budget(1_000_000)
    }

    /// The Fig. 3 example: I₀ and T of arity 3, where I₀ ∈ rep(T).
    fn fig3() -> (CDatabase, Instance) {
        let mut g = VarGen::new();
        let x: Vec<_> = (0..7).map(|_| g.fresh()).collect();
        // T = {(x1,1,x2), (x3,2,3), (1,x4,x5), (1,2,3), (1,2,x6)}
        let t = CTable::codd(
            "R",
            3,
            [
                vec![Term::Var(x[1]), Term::constant(1), Term::Var(x[2])],
                vec![Term::Var(x[3]), Term::constant(2), Term::constant(3)],
                vec![Term::constant(1), Term::Var(x[4]), Term::Var(x[5])],
                vec![Term::constant(1), Term::constant(2), Term::constant(3)],
                vec![Term::constant(1), Term::constant(2), Term::Var(x[6])],
            ],
        )
        .unwrap();
        // I0 = {(1,1,2), (3,2,3), (1,4,5), (1,2,3)}
        let i0 = Instance::single("R", rel![[1, 1, 2], [3, 2, 3], [1, 4, 5], [1, 2, 3]]);
        (CDatabase::single(t), i0)
    }

    #[test]
    fn fig3_membership_holds_via_matching() {
        let (db, i0) = fig3();
        assert_eq!(strategy(&db), Strategy::CoddMatching);
        assert!(codd_matching(&db, &i0));
        assert!(decide(&db, &i0, budget()).unwrap());
        // Cross-check against backtracking and enumeration.
        assert!(backtracking(&db, &i0, budget()).unwrap());
    }

    #[test]
    fn matching_rejects_non_members() {
        let (db, _) = fig3();
        // An instance with a fact no row can produce: every row requires either a leading 1
        // or a fixed value in the second or third position, and (5, 9, 9) matches none.
        let bad = Instance::single("R", rel![[5, 9, 9], [1, 2, 3], [3, 2, 3], [1, 1, 2]]);
        assert!(!codd_matching(&db, &bad));
        assert!(!backtracking(&db, &bad, budget()).unwrap());
        // Too few facts: the all-constant row (1,2,3) forces that fact to be present.
        let missing = Instance::single("R", rel![[1, 1, 2], [3, 2, 3], [1, 4, 5], [9, 9, 9]]);
        assert!(!codd_matching(&db, &missing));
    }

    #[test]
    fn matching_handles_fewer_facts_than_rows() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        // T = {(x), (y), (1)}: worlds have between 1 and 3 facts and always contain (1).
        let t = CTable::codd(
            "R",
            1,
            [
                vec![Term::Var(x)],
                vec![Term::Var(y)],
                vec![Term::constant(1)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(codd_matching(&db, &Instance::single("R", rel![[1]])));
        assert!(codd_matching(&db, &Instance::single("R", rel![[1], [2]])));
        assert!(codd_matching(
            &db,
            &Instance::single("R", rel![[1], [2], [3]])
        ));
        assert!(
            !codd_matching(&db, &Instance::single("R", rel![[2], [3]])),
            "the constant row forces (1)"
        );
        assert!(
            !codd_matching(&db, &Instance::single("R", rel![[1], [2], [3], [4]])),
            "more facts than rows"
        );
    }

    #[test]
    fn matching_and_backtracking_agree_with_enumeration_on_codd_tables() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::codd(
            "R",
            2,
            [
                vec![Term::constant(0), Term::Var(x)],
                vec![Term::Var(y), Term::constant(1)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let candidates = [
            Instance::single("R", rel![[0, 1]]),
            Instance::single("R", rel![[0, 0], [0, 1]]),
            Instance::single("R", rel![[0, 2], [3, 1]]),
            Instance::single("R", rel![[0, 2], [3, 2]]),
            Instance::single("R", rel![[1, 1]]),
            Instance::new(),
        ];
        for inst in &candidates {
            let reference = by_enumeration(&db, inst, 100_000).unwrap();
            assert_eq!(
                codd_matching(&db, inst),
                reference,
                "matching vs enumeration on {inst}"
            );
            assert_eq!(
                backtracking(&db, inst, budget()).unwrap(),
                reference,
                "backtracking vs enumeration on {inst}"
            );
        }
    }

    #[test]
    fn etable_membership_requires_consistent_repeats() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // e-table: {(x, x)} — worlds are {(c, c)}.
        let t = CTable::e_table("R", 2, [vec![Term::Var(x), Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        assert_eq!(strategy(&db), Strategy::Backtracking);
        assert!(backtracking(&db, &Instance::single("R", rel![[3, 3]]), budget()).unwrap());
        assert!(!backtracking(&db, &Instance::single("R", rel![[3, 4]]), budget()).unwrap());
    }

    #[test]
    fn itable_membership_respects_global_inequalities() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::i_table(
            "R",
            1,
            Conjunction::new([Atom::neq(x, y)]),
            [vec![Term::Var(x)], vec![Term::Var(y)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(backtracking(&db, &Instance::single("R", rel![[1], [2]]), budget()).unwrap());
        assert!(
            !backtracking(&db, &Instance::single("R", rel![[1]]), budget()).unwrap(),
            "x ≠ y forbids collapsing the two rows onto one fact"
        );
    }

    #[test]
    fn ctable_membership_uses_absence_branches() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Row (1) present iff x = 0; row (2) present iff x ≠ 0.
        let t = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [
                CTuple::with_condition([Term::constant(1)], Conjunction::new([Atom::eq(x, 0)])),
                CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::neq(x, 0)])),
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(backtracking(&db, &Instance::single("R", rel![[1]]), budget()).unwrap());
        assert!(backtracking(&db, &Instance::single("R", rel![[2]]), budget()).unwrap());
        assert!(
            !backtracking(&db, &Instance::single("R", rel![[1], [2]]), budget()).unwrap(),
            "the two rows are mutually exclusive"
        );
        assert!(
            !backtracking(&db, &Instance::new(), budget()).unwrap(),
            "one of the two rows is always present"
        );
    }

    #[test]
    fn schema_mismatches_are_rejected() {
        let (db, _) = fig3();
        let other = Instance::single("S", rel![[1]]);
        assert!(!codd_matching(&db, &other));
        assert!(!backtracking(&db, &other, budget()).unwrap());
        let wrong_arity = Instance::single("R", rel![[1, 2]]);
        assert!(!codd_matching(&db, &wrong_arity));
    }

    #[test]
    fn view_membership_via_ctable_conversion() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // T = {(1, x)}, q(b) :- T(a, b).  Worlds of the view: {(c)} for any c.
        let t = CTable::codd("T", 2, [vec![Term::constant(1), Term::Var(x)]]).unwrap();
        let db = CDatabase::single(t);
        let q = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("b")],
                [qatom!("T"; "a", "b")],
            ))),
        );
        let view = View::new(q, db);
        assert_eq!(view_strategy(&view), Strategy::Backtracking);
        assert!(view_membership(&view, &Instance::single("Q", rel![[7]]), budget()).unwrap());
        assert!(
            !view_membership(&view, &Instance::single("Q", rel![[7], [8]]), budget()).unwrap(),
            "a single row cannot produce two facts"
        );
    }

    #[test]
    fn view_membership_fo_fallback() {
        use pw_query::{FoQuery, Formula};
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("T", 1, [vec![Term::Var(x)], vec![Term::constant(1)]]).unwrap();
        let db = CDatabase::single(t);
        // q = {1 | ∃a T(a) ∧ a ≠ 1}: output {(1)} iff the world has an element other than 1.
        let q = Query::single(
            "Q",
            QueryDef::Fo(FoQuery::boolean(
                1,
                Formula::exists(
                    ["a"],
                    Formula::and([Formula::atom("T", [QTerm::var("a")]), Formula::neq("a", 1)]),
                ),
            )),
        );
        let view = View::new(q, db);
        assert_eq!(view_strategy(&view), Strategy::WorldEnumeration);
        assert!(view_membership(&view, &Instance::single("Q", rel![[1]]), budget()).unwrap());
        let empty_output = Instance::single("Q", pw_relational::Relation::empty(1));
        assert!(view_membership(&view, &empty_output, budget()).unwrap());
        assert!(
            !view_membership(&view, &Instance::single("Q", rel![[2]]), budget()).unwrap(),
            "the boolean query only ever outputs (1)"
        );
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let (db, i0) = fig3();
        assert_eq!(
            backtracking(&db, &i0, Budget(2)),
            Err(DecisionError::BudgetExceeded)
        );
    }

    #[test]
    fn empty_database_and_empty_instance() {
        let db = CDatabase::default();
        assert!(codd_matching(&db, &Instance::new()));
        assert!(backtracking(&db, &Instance::new(), budget()).unwrap());
        assert!(!codd_matching(&db, &Instance::single("R", rel![[1]])));
    }

    #[test]
    fn tuple_check_no_fact_can_absorb_extra_rows_of_all_constants() {
        // A table with a constant row not matched by the instance forces rejection even
        // when all instance facts are coverable (step (c) of the paper's algorithm).
        let mut g = VarGen::new();
        let x = g.fresh();
        let t = CTable::codd("R", 1, [vec![Term::Var(x)], vec![Term::constant(9)]]).unwrap();
        let db = CDatabase::single(t);
        assert!(!codd_matching(&db, &Instance::single("R", rel![[1]])));
        assert!(codd_matching(&db, &Instance::single("R", rel![[1], [9]])));
    }
}
