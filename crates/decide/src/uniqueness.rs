//! The uniqueness problem `UNIQ(q₀)`: is the set of possible worlds represented by (a view
//! of) a database exactly the singleton `{I}`?
//!
//! * [`gtable_uniqueness`] — the PTIME algorithm of Theorem 3.2(1) for g-tables: propagate
//!   the equalities of the global condition; the representation is `{I}` iff the condition
//!   is satisfiable, the table part is ground, and it equals `I`.
//! * [`pos_exist_etable`] — the PTIME algorithm of Theorem 3.2(2) for positive existential
//!   views of e-tables, using the c-table algebra (step (a)), per-tuple e-tables (steps
//!   (b)–(d)) and the certain-answer check (condition (α)).
//! * [`complement_search`] / [`decide`] — the general coNP procedure: membership plus the
//!   non-existence of a differing world, decided by the constraint searches of
//!   [`crate::search`].

use crate::certify;
use crate::common::{
    evaluation_delta, freeze_database, normalize_database, Budget, Decision, DecisionError,
    Strategy,
};
use crate::engine::{Engine, EngineConfig, MemoOp};
use crate::membership;
use pw_core::algebra::AlgebraError;
use pw_core::{CDatabase, CTable, Certificate, TableClass, View};
use pw_query::{Query, QueryClass, QueryDef};
use pw_relational::{Instance, Relation};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// Decide `UNIQ(q₀)` for a view and an instance, dispatching to the paper's polynomial
/// algorithms when they apply.
pub fn decide(view: &View, instance: &Instance, budget: Budget) -> Result<bool, DecisionError> {
    decide_with(
        view,
        instance,
        &Engine::new(EngineConfig::sequential(budget)),
    )
    .answer
}

/// [`decide`] on an explicit [`Engine`]: the two halves of the coNP complement (a world
/// with an extra fact / a world missing a fact) and all their per-row and per-fact
/// subtrees run on the engine's worker pool.
///
/// Returns a [`Decision`] carrying the answer next to the [`Strategy`] that produced
/// (or attempted) it, so the strategy survives a budget-exceeded search; the dispatch
/// (and the view→c-table conversion behind it) runs exactly once per call.
pub fn decide_with(view: &View, instance: &Instance, engine: &Engine) -> Decision {
    let (strategy, converted) = plan(view, engine.config().per_shard);
    let answer = match strategy {
        Strategy::GTableNormalization => Ok(gtable_uniqueness(&view.db, instance)),
        Strategy::PosExistEtable => Ok(pos_exist_etable(&view.query, &view.db, instance)
            .expect("strategy selection guarantees applicability")),
        Strategy::PerShard { .. } => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => complement_search_per_shard(&db, instance, engine),
                Err(_) => Ok(false),
            }
        }
        Strategy::Backtracking => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => complement_search_with(&db, instance, engine),
                Err(_) => Ok(false),
            }
        }
        _ => by_enumeration_with(view, instance, engine),
    };
    Decision::of(answer, strategy)
}

/// [`decide_with`] plus certificate extraction: a *yes* rests on the exhaustive
/// complement ([`Certificate::Exhaustive`] — uniqueness has no small positive witness);
/// a *no* carries [`Certificate::EmptyRep`] (no world at all) or a
/// [`Certificate::CounterWorld`] — a valuation whose world differs from the instance.
pub(crate) fn decide_certified(view: &View, instance: &Instance, engine: &Engine) -> Decision {
    if !engine.config().certify {
        return decide_with(view, instance, engine);
    }
    let (strategy, converted) = plan(view, engine.config().per_shard);
    match strategy {
        Strategy::GTableNormalization => {
            if gtable_uniqueness(&view.db, instance) {
                Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive))
            } else {
                Decision::certified(
                    Ok(false),
                    strategy,
                    no_uniqueness_cert(view, instance, engine),
                )
            }
        }
        Strategy::PosExistEtable => {
            let answer = pos_exist_etable(&view.query, &view.db, instance)
                .expect("strategy selection guarantees applicability");
            if answer {
                Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive))
            } else {
                Decision::certified(
                    Ok(false),
                    strategy,
                    no_uniqueness_cert(view, instance, engine),
                )
            }
        }
        Strategy::PerShard { .. } => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => certified_per_shard(view, &db, instance, engine, strategy),
                Err(_) => Decision::of(Ok(false), strategy),
            }
        }
        Strategy::Backtracking => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => certified_joint(view, &db, instance, engine, strategy),
                Err(_) => Decision::of(Ok(false), strategy),
            }
        }
        _ => {
            let vars: Vec<_> = view.db.variables().into_iter().collect();
            let delta = enumeration_delta(view, instance);
            let found_world = AtomicBool::new(false);
            let differing =
                engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
                    let world = valuation.world_of(&view.db)?;
                    let output = view.query.eval(&world);
                    found_world.store(true, Ordering::Relaxed);
                    (!output.same_facts(instance)).then(|| valuation.clone())
                });
            match differing {
                Err(e) => Decision::of(Err(e), strategy),
                Ok(Some(v)) => {
                    Decision::certified(Ok(false), strategy, Some(Certificate::counter_world(v)))
                }
                Ok(None) if found_world.load(Ordering::Relaxed) => {
                    Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive))
                }
                Ok(None) => {
                    let cert =
                        (!view.db.has_satisfiable_globals()).then_some(Certificate::EmptyRep);
                    Decision::certified(Ok(false), strategy, cert)
                }
            }
        }
    }
}

/// Certified twin of [`complement_search_with`]: membership is decided (answer only —
/// the uniqueness *yes* needs no membership witness), then the two complement halves
/// run as witness extractions charging one shared budget counter, exactly like the
/// uncertified pair of forests.
fn certified_joint(
    view: &View,
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
    strategy: Strategy,
) -> Decision {
    if !engine.has_satisfiable_globals(db) {
        let cert = (!view.db.has_satisfiable_globals()).then_some(Certificate::EmptyRep);
        return Decision::certified(Ok(false), strategy, cert);
    }
    match membership::decide_joint_with(db, instance, engine) {
        Ok(true) => {}
        Ok(false) => {
            // I is not even a member: *every* world differs from it.
            return Decision::certified(Ok(false), strategy, any_world_counter(view, instance));
        }
        Err(e) => return Decision::of(Err(e), strategy),
    }
    let mut counter = engine.config().counter();
    match certify::escape_witness(db, instance, &mut counter) {
        Ok(Some(w)) => {
            return Decision::certified(Ok(false), strategy, differing_world(view, w, instance))
        }
        Ok(None) => {}
        Err(e) => return Decision::of(Err(e), strategy),
    }
    match certify::missing_witness(db, instance, &mut counter) {
        Ok(Some(w)) => Decision::certified(Ok(false), strategy, differing_world(view, w, instance)),
        Ok(None) => Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive)),
        Err(e) => Decision::of(Err(e), strategy),
    }
}

/// Certified twin of [`complement_search_per_shard`]: certified per-group membership,
/// then the escaping-row and missing-fact disjunctions group by group through the
/// certificate-aware memo (same `MemoOp::Escape` / `MemoOp::MissingAny` keys), with a
/// group's counter-world stitched with the other groups' base completions.
fn certified_per_shard(
    view: &View,
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
    strategy: Strategy,
) -> Decision {
    if db
        .shard_groups()
        .iter()
        .any(|g| !engine.has_satisfiable_globals(g.database()))
    {
        let cert = (!view.db.has_satisfiable_globals()).then_some(Certificate::EmptyRep);
        return Decision::certified(Ok(false), strategy, cert);
    }
    match membership::certified_per_shard_member(db, instance, engine) {
        Ok((true, _)) => {}
        Ok((false, _)) => {
            return Decision::certified(Ok(false), strategy, any_world_counter(view, instance));
        }
        Err(e) => return Decision::of(Err(e), strategy),
    }
    let mut counter = engine.config().counter();
    // Escaping row, group by group (mirror of `fact_outside_per_shard_ctx`).
    for (g_idx, group) in db.shard_groups().iter().enumerate() {
        let gdb = group.database();
        let mut part = Instance::new();
        for table in gdb.tables() {
            if let Some(rel) = instance.relation(table.name()) {
                if rel.arity() == table.arity() && !rel.is_empty() {
                    part.insert_relation(table.name().to_owned(), rel.clone());
                }
            }
        }
        let outcome = engine.memo_certified(MemoOp::Escape, gdb, &part, None, || {
            Ok(match certify::escape_witness(gdb, &part, &mut counter)? {
                Some(w) => (
                    true,
                    Some(Certificate::counter_world(certify::valuation(w))),
                ),
                None => (false, Some(Certificate::Exhaustive)),
            })
        });
        match outcome {
            Ok((true, cert)) => {
                return Decision::certified(
                    Ok(false),
                    strategy,
                    stitch(view, db, g_idx, cert, instance),
                )
            }
            Ok((false, _)) => {}
            Err(e) => return Decision::of(Err(e), strategy),
        }
    }
    // Missing fact, group by group (mirror of `missing_any_per_shard_ctx`).
    let group_of = db.shard_group_index();
    let mut parts: Vec<Instance> = vec![Instance::new(); db.shard_groups().len()];
    let mut any_fact = false;
    for (name, rel) in instance.iter() {
        if rel.is_empty() {
            continue;
        }
        match db.table_position(name) {
            Some(pos) if db.tables()[pos].arity() == rel.arity() => {
                parts[group_of[pos]].insert_relation(name.clone(), rel.clone());
                any_fact = true;
            }
            // Unreachable after a successful membership — defensive mirror.
            _ => {
                return Decision::certified(Ok(false), strategy, any_world_counter(view, instance))
            }
        }
    }
    if any_fact {
        for (g_idx, (group, part)) in db.shard_groups().iter().zip(&parts).enumerate() {
            if part.relation_count() == 0 {
                continue;
            }
            let gdb = group.database();
            let outcome = engine.memo_certified(MemoOp::MissingAny, gdb, part, None, || {
                Ok(match certify::missing_witness(gdb, part, &mut counter)? {
                    Some(w) => (
                        true,
                        Some(Certificate::counter_world(certify::valuation(w))),
                    ),
                    None => (false, Some(Certificate::Exhaustive)),
                })
            });
            match outcome {
                Ok((true, cert)) => {
                    return Decision::certified(
                        Ok(false),
                        strategy,
                        stitch(view, db, g_idx, cert, instance),
                    )
                }
                Ok((false, _)) => {}
                Err(e) => return Decision::of(Err(e), strategy),
            }
        }
    }
    Decision::certified(Ok(true), strategy, Some(Certificate::Exhaustive))
}

/// Stitch a group's counter-world certificate into a counter-world of the whole view.
fn stitch(
    view: &View,
    db: &CDatabase,
    g_idx: usize,
    cert: Option<Certificate>,
    instance: &Instance,
) -> Option<Certificate> {
    match cert {
        Some(Certificate::CounterWorld { valuation }) => {
            certify::stitch_counter_world(db, g_idx, valuation.iter().collect())
                .and_then(|w| differing_world(view, w, instance))
        }
        _ => None,
    }
}

/// Package a binding over the converted database as a differing world of the view.
fn differing_world(view: &View, w: certify::Binding, instance: &Instance) -> Option<Certificate> {
    let avoid = certify::avoid_set(&view.db, instance);
    Some(Certificate::counter_world(certify::valuation(
        certify::fill_unassigned(&view.db, w, &avoid),
    )))
}

/// When `I` is not in the representation at all, any world differs from it: the base
/// completion (globals asserted, everything else fresh) is the counter-world.
fn any_world_counter(view: &View, instance: &Instance) -> Option<Certificate> {
    certify::base_completion(&view.db, &certify::avoid_set(&view.db, instance))
        .map(|w| Certificate::counter_world(certify::valuation(w)))
}

/// A counter-world for the polynomial no-paths: [`Certificate::EmptyRep`] when there is
/// no world at all, otherwise a base completion that provably differs (verified locally,
/// with canonical-valuation enumeration as the fallback).
fn no_uniqueness_cert(view: &View, instance: &Instance, engine: &Engine) -> Option<Certificate> {
    if !view.db.has_satisfiable_globals() {
        return Some(Certificate::EmptyRep);
    }
    certify::base_completion(&view.db, &certify::avoid_set(&view.db, instance))
        .map(certify::valuation)
        .filter(|v| {
            v.world_of(&view.db)
                .is_some_and(|world| !view.query.eval(&world).same_facts(instance))
        })
        .map(Certificate::counter_world)
        .or_else(|| {
            let vars: Vec<_> = view.db.variables().into_iter().collect();
            let delta = enumeration_delta(view, instance);
            engine
                .find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
                    let world = valuation.world_of(&view.db)?;
                    (!view.query.eval(&world).same_facts(instance)).then(|| valuation.clone())
                })
                .ok()
                .flatten()
                .map(Certificate::counter_world)
        })
}

/// The dispatch decision plus (when applicable) the one-time view→c-table conversion.
/// The coNP complement upgrades to [`Strategy::PerShard`] when the converted database's
/// coupling graph splits (and `per_shard` is enabled): a product of representations is
/// `{I}` iff the membership holds and neither an escaping row nor a missing fact exists
/// in any group — the same three searches, decomposed.
fn plan(view: &View, per_shard: bool) -> (Strategy, Option<Result<CDatabase, AlgebraError>>) {
    let db_class = view.db.classify();
    if view.query.is_identity() && db_class <= TableClass::GTable {
        (Strategy::GTableNormalization, None)
    } else if view.query.class() == QueryClass::PositiveExistential
        && db_class <= TableClass::ETable
        && view
            .query
            .outputs()
            .iter()
            .all(|(_, d)| matches!(d, QueryDef::Ucq(_) | QueryDef::Identity { .. }))
    {
        (Strategy::PosExistEtable, None)
    } else if let Some(converted) = view.to_ctables() {
        if per_shard {
            if let Ok(db) = &converted {
                let groups = db.shard_groups().len();
                if groups > 1 {
                    return (Strategy::PerShard { groups }, Some(converted));
                }
            }
        }
        (Strategy::Backtracking, Some(converted))
    } else {
        (Strategy::WorldEnumeration, None)
    }
}

/// The strategy [`decide`] will pick for a view.
pub fn strategy(view: &View) -> Strategy {
    plan(view, true).0
}

/// Theorem 3.2(1): `UNIQ(-)` is in PTIME for g-tables.
///
/// After replacing every variable that the global condition forces to a constant, the
/// representation is `{I}` iff (a) the condition is satisfiable, (b) the table part is
/// ground (no free nulls remain — a remaining null always admits at least two distinct
/// instantiations over the infinite domain) and it equals `I` relation by relation.
pub fn gtable_uniqueness(db: &CDatabase, instance: &Instance) -> bool {
    let Some(normalized) = normalize_database(db) else {
        // Unsatisfiable global condition: rep(db) = ∅ ≠ {I}.
        return false;
    };
    // The instance must not populate unknown relations.
    for (name, rel) in instance.iter() {
        if !rel.is_empty() && normalized.table(name).is_none() {
            return false;
        }
    }
    for table in normalized.tables() {
        let mut rel = Relation::empty(table.arity());
        for row in table.tuples() {
            debug_assert!(
                row.has_trivial_condition(),
                "g-tables have no local conditions"
            );
            let mut fact = Vec::with_capacity(table.arity());
            for term in &row.terms {
                // Resolution goes through the database's own handle, so a private-
                // dictionary database normalises and compares correctly.
                match term.as_sym().and_then(|s| normalized.resolve(s)) {
                    Some(c) => fact.push(c),
                    None => return false, // an unforced null remains: not unique
                }
            }
            rel.insert(pw_relational::Tuple::new(fact))
                .expect("arity preserved");
        }
        if rel != instance.relation_or_empty(table.name(), table.arity()) {
            return false;
        }
    }
    true
}

/// Theorem 3.2(2): `UNIQ(q₀)` is in PTIME for positive existential `q₀` on e-tables.
///
/// Returns `None` when the precondition (positive existential UCQ outputs, e-table class
/// database) does not hold.
pub fn pos_exist_etable(query: &Query, db: &CDatabase, instance: &Instance) -> Option<bool> {
    if db.classify() > TableClass::ETable {
        return None;
    }
    // Step (a): one c-table per output via the algebra.
    let mut outputs: Vec<(String, CTable)> = Vec::new();
    for (name, def) in query.outputs() {
        match def {
            QueryDef::Ucq(ucq) if ucq.is_positive() => {
                let table = pw_core::algebra::eval_ucq(ucq, db, name).ok()?;
                outputs.push((name.clone(), table));
            }
            QueryDef::Identity { relation, arity } => {
                let table = db.table(relation)?.renamed(name.clone());
                if table.arity() != *arity {
                    return None;
                }
                outputs.push((name.clone(), table));
            }
            _ => return None,
        }
    }

    // The instance must not populate relations the query does not output.
    for (name, rel) in instance.iter() {
        if !rel.is_empty() && !outputs.iter().any(|(n, _)| n == name) {
            return Some(false);
        }
    }

    // Condition (α): every fact of I is a *certain* answer.  For positive queries on
    // e-tables certain answers are the ground facts of the naive evaluation (variables
    // frozen as distinct fresh constants).
    let (frozen, fresh) = freeze_database(db, &instance.active_domain());
    for (name, def) in query.outputs() {
        let expected = instance.relation_or_empty(name, def.arity());
        let answer = def.eval(&frozen);
        for fact in expected.iter() {
            let certain = answer.contains(fact) && fact.iter().all(|c| !fresh.contains(c));
            if !certain {
                return Some(false);
            }
        }
    }

    // Condition (β): for every conditional tuple t of every output, the e-table I ∪ {t}
    // with t's (equality-only) condition incorporated represents exactly {I}.
    for (name, table) in &outputs {
        let i_rel = instance.relation_or_empty(name, table.arity());
        for row in table.tuples() {
            let mut rows: Vec<pw_core::CTuple> = i_rel
                .iter()
                .map(|fact| {
                    // Instance facts are interned at the front door, through the
                    // database's handle.
                    pw_core::CTuple::of_terms(
                        fact.iter().map(|c| pw_condition::Term::Const(db.intern(c))),
                    )
                })
                .collect();
            rows.push(pw_core::CTuple::of_terms(row.terms.iter().cloned()));
            let t_ti = CTable::new(name.clone(), table.arity(), row.condition.clone(), rows)
                .expect("arities agree");
            let single = Instance::single(name.clone(), i_rel.clone());
            if !gtable_uniqueness(&db.with_tables_like([t_ti]), &single) {
                return Some(false);
            }
        }
    }
    Some(true)
}

/// The general coNP procedure for c-table databases (identity query): the representation is
/// `{I}` iff `I` is a member and no valuation produces a world different from `I`.
pub fn complement_search(
    db: &CDatabase,
    instance: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    complement_search_with(db, instance, &Engine::new(EngineConfig::sequential(budget)))
}

/// [`complement_search`] on an explicit [`Engine`].
pub fn complement_search_with(
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    if !engine.has_satisfiable_globals(db) {
        return Ok(false);
    }
    if !membership::decide_joint_with(db, instance, engine)? {
        return Ok(false);
    }
    // Both halves of the complement charge one shared budget pool, exactly like the
    // sequential search threads a single counter through them: `Budget(N)` caps the
    // combined complement work at N nodes.
    let ctx = crate::engine::Ctx::new(engine.config().budget);
    if engine.fact_outside_ctx(db, instance, &ctx)? {
        return Ok(false);
    }
    // One engine call covers all facts: each fact's "can it be missing?" search is an
    // independent subtree of the same forest.
    if engine.missing_any_ctx(db, instance, &ctx)? {
        return Ok(false);
    }
    Ok(true)
}

/// [`complement_search_with`] over the shard groups: the same membership +
/// escaping-row + missing-fact decomposition, with the membership fanned per group and
/// the two complement forests rooted in per-group base stores.  A product of
/// representations is `{I}` iff every factor is non-empty and the joint checks pass;
/// an unsatisfiable group means `rep(db) = ∅ ≠ {I}`, matching the joint empty-rep rule.
pub fn complement_search_per_shard(
    db: &CDatabase,
    instance: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    if db
        .shard_groups()
        .iter()
        .any(|g| !engine.has_satisfiable_globals(g.database()))
    {
        return Ok(false);
    }
    if !membership::per_shard_with(db, instance, engine)? {
        return Ok(false);
    }
    // Both complement halves drain one budget pool, exactly like the joint path.
    let ctx = crate::engine::Ctx::new(engine.config().budget);
    if engine.fact_outside_per_shard_ctx(db, instance, &ctx)? {
        return Ok(false);
    }
    if engine.missing_any_per_shard_ctx(db, instance, &ctx)? {
        return Ok(false);
    }
    Ok(true)
}

/// [`by_enumeration`] on an explicit [`Engine`] (parallel canonical-valuation
/// enumeration).
pub fn by_enumeration_with(
    view: &View,
    instance: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    let vars: Vec<_> = view.db.variables().into_iter().collect();
    let mut delta = evaluation_delta(&view.db, instance.active_domain());
    delta.extend(view.query.constants());
    let found_world = AtomicBool::new(false);
    let differing =
        engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
            let world = valuation.world_of(&view.db)?;
            let output = view.query.eval(&world);
            found_world.store(true, Ordering::Relaxed);
            (!output.same_facts(instance)).then_some(())
        })?;
    Ok(found_world.load(Ordering::Relaxed) && differing.is_none())
}

/// Generic fallback: canonical-valuation enumeration (all worlds must equal `I`, and at
/// least one world must exist).
pub fn by_enumeration(
    view: &View,
    instance: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    by_enumeration_with(
        view,
        instance,
        &Engine::new(EngineConfig::sequential(budget)),
    )
}

/// The uniqueness problem takes a set of constants from the instance into Δ; exposing the
/// helper keeps the harness honest about what is being enumerated.
pub fn enumeration_delta(view: &View, instance: &Instance) -> BTreeSet<pw_relational::Constant> {
    let mut delta = evaluation_delta(&view.db, instance.active_domain());
    delta.extend(view.query.constants());
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::CTuple;
    use pw_query::{qatom, ConjunctiveQuery, QTerm, Ucq};
    use pw_relational::rel;

    fn budget() -> Budget {
        Budget(1_000_000)
    }

    #[test]
    fn ground_gtable_is_unique() {
        let t = CTable::g_table(
            "R",
            1,
            Conjunction::truth(),
            [vec![Term::constant(1)], vec![Term::constant(2)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(gtable_uniqueness(
            &db,
            &Instance::single("R", rel![[1], [2]])
        ));
        assert!(!gtable_uniqueness(&db, &Instance::single("R", rel![[1]])));
        assert!(!gtable_uniqueness(&db, &Instance::single("S", rel![[1]])));
    }

    #[test]
    fn forced_variables_become_ground() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        // global: x = 3 ∧ y = x  →  the table {(x), (y)} is really {(3)}.
        let t = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 3), Atom::eq(y, x)]),
            [vec![Term::Var(x)], vec![Term::Var(y)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        assert!(gtable_uniqueness(&db, &Instance::single("R", rel![[3]])));
        assert!(!gtable_uniqueness(
            &db,
            &Instance::single("R", rel![[3], [4]])
        ));
    }

    #[test]
    fn free_variables_or_unsat_conditions_break_uniqueness() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let free = CTable::g_table("R", 1, Conjunction::truth(), [vec![Term::Var(x)]]).unwrap();
        assert!(!gtable_uniqueness(
            &CDatabase::single(free),
            &Instance::single("R", rel![[1]])
        ));
        let unsat = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1), Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        assert!(!gtable_uniqueness(
            &CDatabase::single(unsat),
            &Instance::single("R", rel![[1]])
        ));
    }

    #[test]
    fn gtable_uniqueness_agrees_with_enumeration() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let cases = vec![
            CTable::g_table(
                "R",
                1,
                Conjunction::new([Atom::eq(x, 5)]),
                [vec![Term::Var(x)], vec![Term::constant(5)]],
            )
            .unwrap(),
            CTable::g_table(
                "R",
                1,
                Conjunction::new([Atom::neq(x, 5)]),
                [vec![Term::Var(x)], vec![Term::constant(5)]],
            )
            .unwrap(),
            CTable::g_table(
                "R",
                2,
                Conjunction::new([Atom::eq(x, 1), Atom::eq(y, 2)]),
                [vec![Term::Var(x), Term::Var(y)]],
            )
            .unwrap(),
        ];
        for table in cases {
            let db = CDatabase::single(table);
            let view = View::identity(db.clone());
            for inst in [
                Instance::single("R", rel![[5]]),
                Instance::single("R", rel![[1, 2]]),
                Instance::single("R", rel![[5], [6]]),
            ] {
                if inst.relation("R").unwrap().arity() != db.table("R").unwrap().arity() {
                    continue;
                }
                let fast = gtable_uniqueness(&db, &inst);
                let slow = by_enumeration(&view, &inst, budget()).unwrap();
                assert_eq!(fast, slow, "table {db} instance {inst}");
            }
        }
    }

    #[test]
    fn ctable_uniqueness_via_complement_search() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Row (1) always present; row (2) present iff x = x (always): unique {(1), (2)}.
        let always = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [
                CTuple::of_terms([Term::constant(1)]),
                CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::eq(x, x)])),
            ],
        )
        .unwrap();
        let db = CDatabase::single(always);
        assert!(complement_search(&db, &Instance::single("R", rel![[1], [2]]), budget()).unwrap());
        assert!(!complement_search(&db, &Instance::single("R", rel![[1]]), budget()).unwrap());

        // Row (2) present iff x = 0: not unique (two different worlds).
        let conditional = CTable::new(
            "R",
            1,
            Conjunction::truth(),
            [
                CTuple::of_terms([Term::constant(1)]),
                CTuple::with_condition([Term::constant(2)], Conjunction::new([Atom::eq(x, 0)])),
            ],
        )
        .unwrap();
        let db2 = CDatabase::single(conditional);
        assert!(
            !complement_search(&db2, &Instance::single("R", rel![[1], [2]]), budget()).unwrap()
        );
        assert!(!complement_search(&db2, &Instance::single("R", rel![[1]]), budget()).unwrap());
    }

    #[test]
    fn pos_exist_etable_uniqueness() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // e-table T = {(1, x), (1, 2)}; query q(a) :- T(a, b).
        // q's answer is always {(1)} regardless of x: unique.
        let t = CTable::e_table(
            "T",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::constant(1), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let q_first = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("a")],
                [qatom!("T"; "a", "b")],
            ))),
        );
        let unique_instance = Instance::single("Q", rel![[1]]);
        assert_eq!(
            pos_exist_etable(&q_first, &db, &unique_instance),
            Some(true)
        );
        // Projecting the second column is not unique (x is free).
        let q_second = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("b")],
                [qatom!("T"; "a", "b")],
            ))),
        );
        assert_eq!(
            pos_exist_etable(&q_second, &db, &Instance::single("Q", rel![[2]])),
            Some(false)
        );
        // Cross-check both against enumeration.
        let view_first = View::new(q_first, db.clone());
        let view_second = View::new(q_second, db.clone());
        assert!(by_enumeration(&view_first, &unique_instance, budget()).unwrap());
        assert!(
            !by_enumeration(&view_second, &Instance::single("Q", rel![[2]]), budget()).unwrap()
        );
    }

    #[test]
    fn pos_exist_etable_rejects_wrong_preconditions() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let itable = CTable::i_table(
            "T",
            1,
            Conjunction::new([Atom::neq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let db = CDatabase::single(itable);
        let q = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("a")],
                [qatom!("T"; "a")],
            ))),
        );
        assert_eq!(pos_exist_etable(&q, &db, &Instance::new()), None);
    }

    #[test]
    fn dispatch_picks_the_documented_strategies() {
        let mut g = VarGen::new();
        let x = g.fresh();
        let gtab = CTable::g_table(
            "R",
            1,
            Conjunction::new([Atom::eq(x, 1)]),
            [vec![Term::Var(x)]],
        )
        .unwrap();
        let view = View::identity(CDatabase::single(gtab));
        assert_eq!(strategy(&view), Strategy::GTableNormalization);
        assert!(decide(&view, &Instance::single("R", rel![[1]]), budget()).unwrap());

        let etab = CTable::e_table("T", 1, [vec![Term::Var(x)]]).unwrap();
        let q = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("a")],
                [qatom!("T"; "a")],
            ))),
        );
        let view2 = View::new(q, CDatabase::single(etab));
        assert_eq!(strategy(&view2), Strategy::PosExistEtable);
        assert!(!decide(&view2, &Instance::single("Q", rel![[1]]), budget()).unwrap());
    }
}
