//! The possibility problem `POSS(k, q)` / `POSS(*, q)`: is there a possible world of the
//! view in which all facts of a given set `P` are true?
//!
//! * [`codd_matching`] — Theorem 5.1(1): for Codd-tables the unbounded problem is in PTIME,
//!   by a variation of the membership matching (the matching must saturate `P`, but rows
//!   left over are unconstrained since a superset world is allowed).
//! * [`row_cover`] — the search behind both the bounded PTIME case of Theorem 5.2(1)
//!   (positive existential queries on c-tables: convert with the c-table algebra, then try
//!   the at most `rowsᵏ` ways of producing the `k` facts) and the general NP procedure for
//!   unbounded possibility on conditional tables.
//! * [`by_enumeration`] — the fallback for first order / DATALOG views (NP-complete even on
//!   Codd-tables, Theorem 5.2(2,3)).

use crate::certify;
use crate::common::{evaluation_delta, Budget, Decision, DecisionError, Strategy};
use crate::engine::{Engine, EngineConfig};
use crate::search::exists_world_covering;
use pw_core::algebra::AlgebraError;
use pw_core::{CDatabase, Certificate, View};
use pw_relational::Instance;
use pw_solvers::matching::{maximum_matching, BipartiteGraph};

/// Decide `POSS(·, q)`: is there a world of the view containing every fact of `facts`?
/// The same entry point serves the bounded and unbounded problems; the distinction in the
/// paper is about what is considered part of the input (`k` fixed vs. unbounded), not about
/// the question itself.
pub fn decide(view: &View, facts: &Instance, budget: Budget) -> Result<bool, DecisionError> {
    decide_with(view, facts, &Engine::new(EngineConfig::sequential(budget))).answer
}

/// [`decide`] on an explicit [`Engine`]: the general (NP) paths run on the engine's worker
/// pool with its shared budget, caches and early-exit cancellation.  Parallel searches
/// are scheduled by work stealing by default — the covering search is a search-tree
/// participant (`engine::TreeSearch`), so a skewed tree re-splits under a
/// starving thief — with the static frontier split pinned behind
/// [`EngineConfig::without_work_stealing`](crate::EngineConfig::without_work_stealing).
///
/// Returns a [`Decision`] carrying the answer next to the [`Strategy`] that produced
/// (or attempted) it, so the strategy survives a budget-exceeded search; the dispatch
/// (and in particular the view→c-table conversion behind it) is paid exactly once per
/// call — the batched front door relies on this instead of re-deriving the strategy
/// separately.
pub fn decide_with(view: &View, facts: &Instance, engine: &Engine) -> Decision {
    let (strategy, converted) = plan(view, engine.config().per_shard);
    let answer = match strategy {
        Strategy::CoddMatching => Ok(codd_matching(&view.db, facts)),
        Strategy::PerShard { .. } => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => engine.exists_world_covering_per_shard(&db, facts),
                Err(_) => Ok(false),
            }
        }
        Strategy::CTableAlgebra | Strategy::Backtracking => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => engine.exists_world_covering(&db, facts),
                Err(_) => Ok(false),
            }
        }
        _ => by_enumeration_with(view, facts, engine),
    };
    Decision::of(answer, strategy)
}

/// [`decide_with`] plus certificate extraction: a *yes* carries a witness valuation
/// under which `facts ⊆ q(world)` (extracted over the converted database and filled to a
/// total valuation of `view.db` — `q(σ(view.db)) = σ(converted)` for every total σ); a
/// *no* carries [`Certificate::EmptyRep`] or rests on [`Certificate::Exhaustive`].
pub(crate) fn decide_certified(view: &View, facts: &Instance, engine: &Engine) -> Decision {
    if !engine.config().certify {
        return decide_with(view, facts, engine);
    }
    let (strategy, converted) = plan(view, engine.config().per_shard);
    let avoid = certify::avoid_set(&view.db, facts);
    let yes = |w| {
        Some(Certificate::witness(certify::valuation(
            certify::fill_unassigned(&view.db, w, &avoid),
        )))
    };
    let no = || Some(certify::no_world_cert(&view.db));
    match strategy {
        Strategy::CoddMatching => match certify::codd_cover_witness(&view.db, facts) {
            Some(w) => Decision::certified(Ok(true), strategy, yes(w)),
            None => Decision::certified(Ok(false), strategy, no()),
        },
        Strategy::PerShard { .. } => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => {
                    let outcome = certify::per_shard_witness(
                        &db,
                        facts,
                        engine,
                        crate::engine::MemoOp::Covering,
                        certify::cover_witness,
                    );
                    match outcome {
                        Ok((true, Some(w))) => Decision::certified(Ok(true), strategy, yes(w)),
                        Ok((true, None)) => Decision::of(Ok(true), strategy),
                        Ok((false, _)) => Decision::certified(Ok(false), strategy, no()),
                        Err(e) => Decision::of(Err(e), strategy),
                    }
                }
                Err(_) => Decision::certified(Ok(false), strategy, Some(Certificate::Exhaustive)),
            }
        }
        Strategy::CTableAlgebra | Strategy::Backtracking => {
            match converted.expect("planned strategies carry their conversion") {
                Ok(db) => {
                    let mut counter = engine.config().counter();
                    match certify::cover_witness(&db, facts, &mut counter) {
                        Ok(Some(w)) => Decision::certified(Ok(true), strategy, yes(w)),
                        Ok(None) => Decision::certified(Ok(false), strategy, no()),
                        Err(e) => Decision::of(Err(e), strategy),
                    }
                }
                Err(_) => Decision::certified(Ok(false), strategy, Some(Certificate::Exhaustive)),
            }
        }
        _ => {
            let vars: Vec<_> = view.db.variables().into_iter().collect();
            let mut delta = evaluation_delta(&view.db, facts.active_domain());
            delta.extend(view.query.constants());
            let found =
                engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
                    let world = valuation.world_of(&view.db)?;
                    let output = view.query.eval(&world);
                    facts.is_subinstance_of(&output).then(|| valuation.clone())
                });
            match found {
                Ok(Some(v)) => {
                    Decision::certified(Ok(true), strategy, Some(Certificate::witness(v)))
                }
                Ok(None) => Decision::certified(Ok(false), strategy, no()),
                Err(e) => Decision::of(Err(e), strategy),
            }
        }
    }
}

/// The dispatch decision and, when the chosen strategy runs on a converted c-table
/// database, the conversion itself — computed together so it is never repeated.  The
/// covering-search strategies upgrade to [`Strategy::PerShard`] when the converted
/// database's coupling graph splits (and `per_shard` is enabled): the per-group covering
/// searches conjoin to exactly the joint answer.
fn plan(view: &View, per_shard: bool) -> (Strategy, Option<Result<CDatabase, AlgebraError>>) {
    if view.query.is_identity() {
        if view.db.is_decoupled_codd() {
            (Strategy::CoddMatching, None)
        } else {
            upgrade(Strategy::Backtracking, view.to_ctables(), per_shard)
        }
    } else if let Some(converted) = view.to_ctables() {
        // Positive existential (possibly with ≠) view: Theorem 5.2(1)'s path.
        upgrade(Strategy::CTableAlgebra, Some(converted), per_shard)
    } else {
        (Strategy::WorldEnumeration, None)
    }
}

/// Upgrade a covering-search plan to the shard-group decomposition when it applies.
fn upgrade(
    base: Strategy,
    converted: Option<Result<CDatabase, AlgebraError>>,
    per_shard: bool,
) -> (Strategy, Option<Result<CDatabase, AlgebraError>>) {
    if per_shard {
        if let Some(Ok(db)) = &converted {
            let groups = db.shard_groups().len();
            if groups > 1 {
                return (Strategy::PerShard { groups }, converted);
            }
        }
    }
    (base, converted)
}

/// The strategy [`decide`] will use.
pub fn strategy(view: &View) -> Strategy {
    plan(view, true).0
}

/// Theorem 5.1(1): unbounded possibility for Codd-tables via bipartite matching.  `facts`
/// is possible iff, per relation, there is a matching of the facts into pairwise distinct
/// unifiable rows that saturates the facts.
pub fn codd_matching(db: &CDatabase, facts: &Instance) -> bool {
    for (name, rel) in facts.iter() {
        if rel.is_empty() {
            continue;
        }
        let Some(table) = db.table(name) else {
            return false;
        };
        if table.arity() != rel.arity() {
            return false;
        }
        // Intern once; the edge loop compares ids.
        let fact_list: Vec<Vec<pw_relational::Sym>> = rel
            .iter()
            .map(|f| crate::engine::intern_fact(db, f))
            .collect();
        let mut graph = BipartiteGraph::new(fact_list.len(), table.len());
        for (i, fact) in fact_list.iter().enumerate() {
            for (j, row) in table.tuples().iter().enumerate() {
                let unifies = row
                    .terms
                    .iter()
                    .zip(fact.iter())
                    .all(|(t, &c)| t.as_sym().is_none_or(|tc| tc == c));
                if unifies {
                    graph.add_edge(i, j);
                }
            }
        }
        if maximum_matching(&graph).cardinality() != fact_list.len() {
            return false;
        }
    }
    true
}

/// The bounded/general search on conditional tables: find rows producing exactly the facts
/// of `P` under a consistent valuation (Theorem 5.2(1) after c-table conversion; the same
/// search is the NP procedure for e-/i-/g-/c-tables).
pub fn row_cover(db: &CDatabase, facts: &Instance, budget: Budget) -> Result<bool, DecisionError> {
    let mut counter = budget.counter();
    exists_world_covering(db, facts, &mut counter)
}

/// [`by_enumeration`] on an explicit [`Engine`] (parallel canonical-valuation
/// enumeration).
pub fn by_enumeration_with(
    view: &View,
    facts: &Instance,
    engine: &Engine,
) -> Result<bool, DecisionError> {
    let vars: Vec<_> = view.db.variables().into_iter().collect();
    let mut delta = evaluation_delta(&view.db, facts.active_domain());
    delta.extend(view.query.constants());
    let found = engine.find_canonical_valuation(view.db.symbols(), &vars, &delta, |valuation| {
        let world = valuation.world_of(&view.db)?;
        let output = view.query.eval(&world);
        facts.is_subinstance_of(&output).then_some(())
    })?;
    Ok(found.is_some())
}

/// Generic fallback for first order and DATALOG views: canonical-valuation enumeration.
pub fn by_enumeration(
    view: &View,
    facts: &Instance,
    budget: Budget,
) -> Result<bool, DecisionError> {
    by_enumeration_with(view, facts, &Engine::new(EngineConfig::sequential(budget)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_condition::{Atom, Conjunction, Term, VarGen};
    use pw_core::CTable;
    use pw_query::{qatom, ConjunctiveQuery, DatalogProgram, QTerm, Query, QueryDef, Ucq};
    use pw_relational::rel;

    fn budget() -> Budget {
        Budget(1_000_000)
    }

    #[test]
    fn codd_possibility_is_a_matching_problem() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::codd(
            "R",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::Var(y), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let view = View::identity(db.clone());
        assert_eq!(strategy(&view), Strategy::CoddMatching);
        assert!(codd_matching(&db, &Instance::single("R", rel![[1, 7]])));
        assert!(codd_matching(
            &db,
            &Instance::single("R", rel![[1, 7], [9, 2]])
        ));
        assert!(
            !codd_matching(&db, &Instance::single("R", rel![[1, 7], [1, 8]])),
            "two facts cannot both come from the single compatible row"
        );
        assert!(!codd_matching(&db, &Instance::single("R", rel![[3, 4]])));
        assert!(!codd_matching(&db, &Instance::single("S", rel![[3]])));
        // Empty fact set is always possible.
        assert!(codd_matching(&db, &Instance::new()));
    }

    #[test]
    fn matching_agrees_with_row_cover_and_enumeration() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::codd(
            "R",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::Var(y), Term::constant(2)],
            ],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let view = View::identity(db.clone());
        for facts in [
            Instance::single("R", rel![[1, 7]]),
            Instance::single("R", rel![[1, 2]]),
            Instance::single("R", rel![[1, 7], [9, 2]]),
            Instance::single("R", rel![[1, 7], [1, 8]]),
            Instance::single("R", rel![[3, 4]]),
        ] {
            let m = codd_matching(&db, &facts);
            let r = row_cover(&db, &facts, budget()).unwrap();
            let e = by_enumeration(&view, &facts, budget()).unwrap();
            assert_eq!(m, r, "matching vs row-cover on {facts}");
            assert_eq!(m, e, "matching vs enumeration on {facts}");
        }
    }

    #[test]
    fn itable_possibility_respects_inequalities() {
        let mut g = VarGen::new();
        let (x, y) = (g.fresh(), g.fresh());
        let t = CTable::i_table(
            "R",
            1,
            Conjunction::new([Atom::neq(x, y)]),
            [vec![Term::Var(x)], vec![Term::Var(y)]],
        )
        .unwrap();
        let db = CDatabase::single(t);
        let view = View::identity(db.clone());
        assert_eq!(strategy(&view), Strategy::Backtracking);
        assert!(row_cover(&db, &Instance::single("R", rel![[1], [2]]), budget()).unwrap());
        // Both facts equal: they would need the two rows to coincide, violating x ≠ y …
        // but a single fact set {1} only needs one row, so it stays possible.
        assert!(row_cover(&db, &Instance::single("R", rel![[1]]), budget()).unwrap());
        // Duplicate facts collapse in a set, so {1, 1} is just {1}: still possible.
        assert!(row_cover(&db, &Instance::single("R", rel![[1], [1]]), budget()).unwrap());
    }

    #[test]
    fn bounded_possibility_through_a_positive_view() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // T = {(1, x), (2, 3)}; q(a, b) :- T(a, b) — identity-like but through the algebra.
        let t = CTable::codd(
            "T",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::constant(2), Term::constant(3)],
            ],
        )
        .unwrap();
        let q = Query::single(
            "Q",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("a"), QTerm::var("b")],
                [qatom!("T"; "a", "b")],
            ))),
        );
        let view = View::new(q, CDatabase::single(t));
        assert_eq!(strategy(&view), Strategy::CTableAlgebra);
        assert!(decide(&view, &Instance::single("Q", rel![[1, 9]]), budget()).unwrap());
        assert!(decide(
            &view,
            &Instance::single("Q", rel![[1, 9], [2, 3]]),
            budget()
        )
        .unwrap());
        assert!(!decide(&view, &Instance::single("Q", rel![[3, 3]]), budget()).unwrap());
        // A join query: q2(a) :- T(a, b), T(b, c)  — possible only if x can chain onto a row.
        let q2 = Query::single(
            "J",
            QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
                [QTerm::var("a")],
                [qatom!("T"; "a", "b"), qatom!("T"; "b", "c")],
            ))),
        );
        let mut g2 = VarGen::new();
        let x2 = g2.fresh();
        let t2 = CTable::codd(
            "T",
            2,
            [
                vec![Term::constant(1), Term::Var(x2)],
                vec![Term::constant(2), Term::constant(3)],
            ],
        )
        .unwrap();
        let view2 = View::new(q2, CDatabase::single(t2));
        // (1) ∈ q2 iff x = 1 (self-join) or x = 2 (chain through (2,3)): possible.
        assert!(decide(&view2, &Instance::single("J", rel![[1]]), budget()).unwrap());
        // (3) ∈ q2 would need a row starting with 3: impossible.
        assert!(!decide(&view2, &Instance::single("J", rel![[3]]), budget()).unwrap());
    }

    #[test]
    fn datalog_view_falls_back_to_enumeration() {
        let mut g = VarGen::new();
        let x = g.fresh();
        // Edges {(1, x), (2, 3)}; is (1, 3) possibly in the transitive closure?  Yes: x = 2.
        let t = CTable::codd(
            "E",
            2,
            [
                vec![Term::constant(1), Term::Var(x)],
                vec![Term::constant(2), Term::constant(3)],
            ],
        )
        .unwrap();
        let q = Query::single(
            "TC",
            QueryDef::Datalog(DatalogProgram::transitive_closure("E", "TC")),
        );
        let view = View::new(q, CDatabase::single(t));
        assert_eq!(strategy(&view), Strategy::WorldEnumeration);
        assert!(decide(&view, &Instance::single("TC", rel![[1, 3]]), budget()).unwrap());
        assert!(!decide(&view, &Instance::single("TC", rel![[3, 1]]), budget()).unwrap());
    }

    #[test]
    fn certainty_implies_possibility_spot_check() {
        // A ground fact present in the table is both certain and possible.
        let t = CTable::codd("R", 1, [vec![Term::constant(4)]]).unwrap();
        let db = CDatabase::single(t);
        let view = View::identity(db.clone());
        let p = Instance::single("R", rel![[4]]);
        assert!(decide(&view, &p, budget()).unwrap());
        assert!(crate::certainty::decide(&view, &p, budget()).unwrap());
    }
}
