//! # `possible-worlds` — representation and querying of sets of possible worlds
//!
//! A Rust implementation of the incomplete-information database framework of
//! S. Abiteboul, P. Kanellakis and G. Grahne, *On the Representation and Querying of Sets
//! of Possible Worlds* (SIGMOD 1987 / Theoretical Computer Science 78, 1991).
//!
//! This facade crate re-exports the whole workspace under stable module names:
//!
//! * [`relational`] — complete information databases (constants, tuples, relations,
//!   instances, relational algebra);
//! * [`condition`] — null values and the equality/inequality conditions attached to tables;
//! * [`query`] — positive existential (UCQ), relational algebra, first order and DATALOG
//!   queries with PTIME data-complexity evaluation;
//! * [`core`] — the table hierarchy (Codd-, e-, i-, g-, c-tables), valuations, `rep(·)`
//!   possible-world semantics, the Imieliński–Lipski c-table algebra, and views;
//! * [`decide`] — the decision procedures for membership, uniqueness, containment,
//!   possibility and certainty, with the paper's polynomial algorithms where they exist;
//! * [`check`] — the independent polynomial-time checker for the certificates the
//!   decision procedures optionally return ([`decide::EngineConfig::certified`]);
//! * [`solvers`] — bipartite matching, DPLL SAT, graph colouring and ∀∃3CNF solvers;
//! * [`reductions`] — the paper's hardness reductions, theorem by theorem;
//! * [`workloads`] — seeded random workload generators used by the benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use possible_worlds::prelude::*;
//!
//! // An HR database where Bob's department is unknown.
//! let mut vars = VarGen::new();
//! let dept = vars.named("bob_dept");
//! let table = CTable::codd(
//!     "works_in",
//!     2,
//!     [
//!         vec![Term::from("alice"), Term::from("sales")],
//!         vec![Term::from("bob"), Term::Var(dept)],
//!     ],
//! )
//! .unwrap();
//! let db = CDatabase::single(table);
//!
//! // "Is it possible that Bob works in sales?"  "Is it certain?"
//! let view = View::identity(db);
//! let bob_in_sales = Instance::single(
//!     "works_in",
//!     Relation::from_tuples(2, [Tuple::new(["bob".into(), "sales".into()])]),
//! );
//! assert!(possibility::decide(&view, &bob_in_sales, Budget::default()).unwrap());
//! assert!(!certainty::decide(&view, &bob_in_sales, Budget::default()).unwrap());
//! ```

pub use pw_check as check;
pub use pw_condition as condition;
pub use pw_core as core;
pub use pw_decide as decide;
pub use pw_query as query;
pub use pw_reductions as reductions;
pub use pw_relational as relational;
pub use pw_solvers as solvers;
pub use pw_workloads as workloads;

/// Build the checker's claim for a decided batch request.
///
/// The decision layer ([`decide::DecisionRequest`]) and the checker
/// ([`check::Problem`]) deliberately do not know about each other — the checker must
/// stay engine-free — so this facade helper does the one-to-one translation: pair it
/// with a [`decide::DecisionOutcome`]'s answer and certificate to audit any decision:
///
/// ```
/// use possible_worlds::{check, check_claim, decide};
/// use possible_worlds::prelude::*;
///
/// let db = CDatabase::single(CTable::codd("r", 1, [vec![Term::from("a")]]).unwrap());
/// let request = decide::DecisionRequest::Possibility {
///     view: View::identity(db),
///     facts: Instance::single("r", Relation::from_tuples(1, [Tuple::new(["a".into()])])),
/// };
/// let outcome = &decide::Session::certifying(&decide::EngineConfig::default(), 1)
///     .decide_all(std::slice::from_ref(&request))[0];
/// let claim = check_claim(&request, *outcome.answer.as_ref().unwrap());
/// check::verify(&claim, outcome.certificate.as_ref().unwrap()).unwrap();
/// ```
pub fn check_claim<'a>(request: &'a decide::DecisionRequest, answer: bool) -> check::Claim<'a> {
    use check::Problem;
    use decide::DecisionRequest;
    let problem = match request {
        DecisionRequest::Membership { view, instance } => Problem::Membership { view, instance },
        DecisionRequest::Uniqueness { view, instance } => Problem::Uniqueness { view, instance },
        DecisionRequest::Containment { left, right } => Problem::Containment { left, right },
        DecisionRequest::Possibility { view, facts } => Problem::Possibility { view, facts },
        DecisionRequest::Certainty { view, facts } => Problem::Certainty { view, facts },
    };
    check::Claim { problem, answer }
}

/// The most commonly used items, for glob import in examples and applications.
pub mod prelude {
    pub use pw_condition::{Atom, BoolExpr, Conjunction, ConstraintSet, Term, VarGen, Variable};
    pub use pw_core::{
        algebra::eval_ucq, rep::PossibleWorlds, simplify_database, simplify_table, CDatabase,
        CTable, CTuple, TableClass, Valuation, View,
    };
    pub use pw_decide::{certainty, containment, membership, possibility, uniqueness};
    pub use pw_decide::{
        Budget, BudgetExceeded, CancelToken, Decision, DecisionError, FaultPlan, Strategy,
    };
    pub use pw_query::{
        qatom, ConjunctiveQuery, DatalogProgram, DlAtom, DlRule, FoQuery, Formula, QTerm, Query,
        QueryClass, QueryDef, RaExpr, Ucq,
    };
    pub use pw_relational::{
        rel, tup, Catalog, Constant, Instance, RelId, Relation, StrId, Sym, SymbolTable, Symbols,
        Tuple,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let fig1 = crate::core::paper::fig1();
        let db = CDatabase::single(fig1.tc);
        let view = View::identity(db);
        let worlds = view.enumerate_worlds(100_000, []).unwrap();
        assert!(!worlds.is_empty());
    }
}
