//! # `possible-worlds` — representation and querying of sets of possible worlds
//!
//! A Rust implementation of the incomplete-information database framework of
//! S. Abiteboul, P. Kanellakis and G. Grahne, *On the Representation and Querying of Sets
//! of Possible Worlds* (SIGMOD 1987 / Theoretical Computer Science 78, 1991).
//!
//! This facade crate re-exports the whole workspace under stable module names:
//!
//! * [`relational`] — complete information databases (constants, tuples, relations,
//!   instances, relational algebra);
//! * [`condition`] — null values and the equality/inequality conditions attached to tables;
//! * [`query`] — positive existential (UCQ), relational algebra, first order and DATALOG
//!   queries with PTIME data-complexity evaluation;
//! * [`core`] — the table hierarchy (Codd-, e-, i-, g-, c-tables), valuations, `rep(·)`
//!   possible-world semantics, the Imieliński–Lipski c-table algebra, and views;
//! * [`decide`] — the decision procedures for membership, uniqueness, containment,
//!   possibility and certainty, with the paper's polynomial algorithms where they exist;
//! * [`solvers`] — bipartite matching, DPLL SAT, graph colouring and ∀∃3CNF solvers;
//! * [`reductions`] — the paper's hardness reductions, theorem by theorem;
//! * [`workloads`] — seeded random workload generators used by the benchmark harness.
//!
//! ## Quickstart
//!
//! ```
//! use possible_worlds::prelude::*;
//!
//! // An HR database where Bob's department is unknown.
//! let mut vars = VarGen::new();
//! let dept = vars.named("bob_dept");
//! let table = CTable::codd(
//!     "works_in",
//!     2,
//!     [
//!         vec![Term::from("alice"), Term::from("sales")],
//!         vec![Term::from("bob"), Term::Var(dept)],
//!     ],
//! )
//! .unwrap();
//! let db = CDatabase::single(table);
//!
//! // "Is it possible that Bob works in sales?"  "Is it certain?"
//! let view = View::identity(db);
//! let bob_in_sales = Instance::single(
//!     "works_in",
//!     Relation::from_tuples(2, [Tuple::new(["bob".into(), "sales".into()])]),
//! );
//! assert!(possibility::decide(&view, &bob_in_sales, Budget::default()).unwrap());
//! assert!(!certainty::decide(&view, &bob_in_sales, Budget::default()).unwrap());
//! ```

pub use pw_condition as condition;
pub use pw_core as core;
pub use pw_decide as decide;
pub use pw_query as query;
pub use pw_reductions as reductions;
pub use pw_relational as relational;
pub use pw_solvers as solvers;
pub use pw_workloads as workloads;

/// The most commonly used items, for glob import in examples and applications.
pub mod prelude {
    pub use pw_condition::{Atom, BoolExpr, Conjunction, ConstraintSet, Term, VarGen, Variable};
    pub use pw_core::{
        algebra::eval_ucq, rep::PossibleWorlds, simplify_database, simplify_table, CDatabase,
        CTable, CTuple, TableClass, Valuation, View,
    };
    pub use pw_decide::{certainty, containment, membership, possibility, uniqueness};
    pub use pw_decide::{Budget, BudgetExceeded, Strategy};
    pub use pw_query::{
        qatom, ConjunctiveQuery, DatalogProgram, DlAtom, DlRule, FoQuery, Formula, QTerm, Query,
        QueryClass, QueryDef, RaExpr, Ucq,
    };
    pub use pw_relational::{
        rel, tup, Catalog, Constant, Instance, RelId, Relation, StrId, Sym, SymbolTable, Symbols,
        Tuple,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let fig1 = crate::core::paper::fig1();
        let db = CDatabase::single(fig1.tc);
        let view = View::identity(db);
        let worlds = view.enumerate_worlds(100_000, []).unwrap();
        assert!(!worlds.is_empty());
    }
}
