//! Relational algebra expressions.
//!
//! [`RaExpr`] is a positional algebra AST over named base relations.  Its ≠-free,
//! difference-free fragment is exactly the positive existential queries (project, join,
//! union, renaming, positive select — Section 2.1); adding [`RaExpr::Diff`] and ≠ selection
//! predicates yields the full first order queries.

use pw_relational::algebra::{self, Pred};
use pw_relational::{Constant, Instance, Relation};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised during static arity inference of an [`RaExpr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaError {
    /// Column index out of range for the operand arity.
    ColumnOutOfRange {
        /// The offending column.
        column: usize,
        /// The operand arity.
        arity: usize,
    },
    /// Union/difference operands have different arities.
    ArityMismatch(usize, usize),
    /// A base relation is used with two different arities.
    InconsistentBase(String),
    /// A rename permutation has the wrong length.
    BadRename {
        /// Expected length (operand arity).
        expected: usize,
        /// Supplied length.
        found: usize,
    },
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::ColumnOutOfRange { column, arity } => {
                write!(f, "column {column} out of range for arity {arity}")
            }
            RaError::ArityMismatch(a, b) => write!(f, "arity mismatch: {a} vs {b}"),
            RaError::InconsistentBase(r) => {
                write!(f, "base relation {r:?} used with inconsistent arities")
            }
            RaError::BadRename { expected, found } => {
                write!(
                    f,
                    "rename permutation of length {found}, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for RaError {}

/// A relational algebra expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaExpr {
    /// A base relation with its declared arity.
    Rel(String, usize),
    /// A literal relation (useful for constant singleton relations in reductions).
    Lit(Relation),
    /// σ — selection by a list of predicates (conjunction).
    Select(Box<RaExpr>, Vec<Pred>),
    /// π — projection onto columns (may repeat / reorder).
    Project(Box<RaExpr>, Vec<usize>),
    /// × — cartesian product.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// ⋈ — equi-join on (left column, right column) pairs; keeps all columns of both sides.
    Join(Box<RaExpr>, Box<RaExpr>, Vec<(usize, usize)>),
    /// ∪ — union.
    Union(Box<RaExpr>, Box<RaExpr>),
    /// − — difference (first order only).
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// Renaming as a column permutation.
    Rename(Box<RaExpr>, Vec<usize>),
    /// Append constant columns.
    ExtendConst(Box<RaExpr>, Vec<Constant>),
}

impl RaExpr {
    /// Reference a base relation.
    pub fn rel(name: impl Into<String>, arity: usize) -> RaExpr {
        RaExpr::Rel(name.into(), arity)
    }

    /// σ helper.
    pub fn select(self, preds: impl IntoIterator<Item = Pred>) -> RaExpr {
        RaExpr::Select(Box::new(self), preds.into_iter().collect())
    }

    /// π helper.
    pub fn project(self, cols: impl IntoIterator<Item = usize>) -> RaExpr {
        RaExpr::Project(Box::new(self), cols.into_iter().collect())
    }

    /// × helper.
    pub fn product(self, other: RaExpr) -> RaExpr {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// ⋈ helper.
    pub fn join(self, other: RaExpr, on: impl IntoIterator<Item = (usize, usize)>) -> RaExpr {
        RaExpr::Join(Box::new(self), Box::new(other), on.into_iter().collect())
    }

    /// ∪ helper.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// − helper.
    pub fn diff(self, other: RaExpr) -> RaExpr {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    /// Static arity inference; also validates column references and consistent base usage.
    pub fn arity(&self) -> Result<usize, RaError> {
        let mut bases: BTreeMap<String, usize> = BTreeMap::new();
        self.arity_inner(&mut bases)
    }

    fn arity_inner(&self, bases: &mut BTreeMap<String, usize>) -> Result<usize, RaError> {
        match self {
            RaExpr::Rel(name, arity) => match bases.get(name) {
                Some(&a) if a != *arity => Err(RaError::InconsistentBase(name.clone())),
                _ => {
                    bases.insert(name.clone(), *arity);
                    Ok(*arity)
                }
            },
            RaExpr::Lit(r) => Ok(r.arity()),
            RaExpr::Select(e, preds) => {
                let a = e.arity_inner(bases)?;
                for p in preds {
                    if p.max_col() >= a {
                        return Err(RaError::ColumnOutOfRange {
                            column: p.max_col(),
                            arity: a,
                        });
                    }
                }
                Ok(a)
            }
            RaExpr::Project(e, cols) => {
                let a = e.arity_inner(bases)?;
                for &c in cols {
                    if c >= a {
                        return Err(RaError::ColumnOutOfRange {
                            column: c,
                            arity: a,
                        });
                    }
                }
                Ok(cols.len())
            }
            RaExpr::Product(l, r) => Ok(l.arity_inner(bases)? + r.arity_inner(bases)?),
            RaExpr::Join(l, r, on) => {
                let la = l.arity_inner(bases)?;
                let ra = r.arity_inner(bases)?;
                for &(a, b) in on {
                    if a >= la {
                        return Err(RaError::ColumnOutOfRange {
                            column: a,
                            arity: la,
                        });
                    }
                    if b >= ra {
                        return Err(RaError::ColumnOutOfRange {
                            column: b,
                            arity: ra,
                        });
                    }
                }
                Ok(la + ra)
            }
            RaExpr::Union(l, r) | RaExpr::Diff(l, r) => {
                let la = l.arity_inner(bases)?;
                let ra = r.arity_inner(bases)?;
                if la != ra {
                    return Err(RaError::ArityMismatch(la, ra));
                }
                Ok(la)
            }
            RaExpr::Rename(e, perm) => {
                let a = e.arity_inner(bases)?;
                if perm.len() != a {
                    return Err(RaError::BadRename {
                        expected: a,
                        found: perm.len(),
                    });
                }
                for &c in perm {
                    if c >= a {
                        return Err(RaError::ColumnOutOfRange {
                            column: c,
                            arity: a,
                        });
                    }
                }
                Ok(a)
            }
            RaExpr::ExtendConst(e, consts) => Ok(e.arity_inner(bases)? + consts.len()),
        }
    }

    /// All constants mentioned by the expression (in literals, selection predicates and
    /// constant-column extensions).  Decision procedures include these in the evaluation
    /// domain Δ of Proposition 2.1.
    pub fn constants(&self) -> std::collections::BTreeSet<Constant> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut std::collections::BTreeSet<Constant>) {
        match self {
            RaExpr::Rel(..) => {}
            RaExpr::Lit(r) => out.extend(r.active_domain()),
            RaExpr::Select(e, preds) => {
                for p in preds {
                    if let Pred::EqConst(_, c) | Pred::NeqConst(_, c) = p {
                        out.insert(c.clone());
                    }
                }
                e.collect_constants(out);
            }
            RaExpr::Project(e, _) | RaExpr::Rename(e, _) => e.collect_constants(out),
            RaExpr::ExtendConst(e, consts) => {
                out.extend(consts.iter().cloned());
                e.collect_constants(out);
            }
            RaExpr::Product(l, r)
            | RaExpr::Join(l, r, _)
            | RaExpr::Union(l, r)
            | RaExpr::Diff(l, r) => {
                l.collect_constants(out);
                r.collect_constants(out);
            }
        }
    }

    /// Whether the expression is a positive existential query (no difference, no ≠).
    pub fn is_positive_existential(&self) -> bool {
        match self {
            RaExpr::Rel(..) | RaExpr::Lit(_) => true,
            RaExpr::Select(e, preds) => {
                preds.iter().all(Pred::is_positive) && e.is_positive_existential()
            }
            RaExpr::Project(e, _) | RaExpr::Rename(e, _) | RaExpr::ExtendConst(e, _) => {
                e.is_positive_existential()
            }
            RaExpr::Product(l, r) | RaExpr::Join(l, r, _) | RaExpr::Union(l, r) => {
                l.is_positive_existential() && r.is_positive_existential()
            }
            RaExpr::Diff(..) => false,
        }
    }

    /// Evaluate on an instance.  Well-formed expressions (checked by [`RaExpr::arity`])
    /// cannot fail; a base relation missing from the instance evaluates to the empty
    /// relation of its declared arity.
    pub fn eval(&self, instance: &Instance) -> Relation {
        match self {
            RaExpr::Rel(name, arity) => instance.relation_or_empty(name, *arity),
            RaExpr::Lit(r) => r.clone(),
            RaExpr::Select(e, preds) => {
                algebra::select(&e.eval(instance), preds).expect("validated select")
            }
            RaExpr::Project(e, cols) => {
                algebra::project(&e.eval(instance), cols).expect("validated project")
            }
            RaExpr::Product(l, r) => {
                algebra::product(&l.eval(instance), &r.eval(instance)).expect("product")
            }
            RaExpr::Join(l, r, on) => {
                algebra::join(&l.eval(instance), &r.eval(instance), on).expect("validated join")
            }
            RaExpr::Union(l, r) => {
                algebra::union(&l.eval(instance), &r.eval(instance)).expect("validated union")
            }
            RaExpr::Diff(l, r) => {
                algebra::difference(&l.eval(instance), &r.eval(instance)).expect("validated diff")
            }
            RaExpr::Rename(e, perm) => {
                algebra::rename(&e.eval(instance), perm).expect("validated rename")
            }
            RaExpr::ExtendConst(e, consts) => {
                algebra::extend_constants(&e.eval(instance), consts).expect("extend")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_relational::{rel, tup};

    fn inst() -> Instance {
        let mut i = Instance::single("R", rel![[1, 2], [2, 3], [3, 3]]);
        i.insert_relation("S", rel![[3], [4]]);
        i
    }

    #[test]
    fn arity_inference_and_validation() {
        let e = RaExpr::rel("R", 2)
            .join(RaExpr::rel("S", 1), [(1, 0)])
            .project([0, 2]);
        assert_eq!(e.arity(), Ok(2));
        let bad = RaExpr::rel("R", 2).project([5]);
        assert!(matches!(bad.arity(), Err(RaError::ColumnOutOfRange { .. })));
        let mixed = RaExpr::rel("R", 2).union(RaExpr::rel("S", 1));
        assert_eq!(mixed.arity(), Err(RaError::ArityMismatch(2, 1)));
        let inconsistent = RaExpr::rel("R", 2).product(RaExpr::rel("R", 3));
        assert!(matches!(
            inconsistent.arity(),
            Err(RaError::InconsistentBase(_))
        ));
        let bad_rename = RaExpr::Rename(Box::new(RaExpr::rel("R", 2)), vec![0]);
        assert!(matches!(bad_rename.arity(), Err(RaError::BadRename { .. })));
    }

    #[test]
    fn eval_join_select_project() {
        // π_{0}(σ_{col0 ≠ col1}(R)) — endpoints of non-loop edges
        let e = RaExpr::rel("R", 2)
            .select([Pred::NeqCols(0, 1)])
            .project([0]);
        assert_eq!(e.eval(&inst()), rel![[1], [2]]);

        // R ⋈_{1=0} S, keep R's columns
        let j = RaExpr::rel("R", 2)
            .join(RaExpr::rel("S", 1), [(1, 0)])
            .project([0, 1]);
        assert_eq!(j.eval(&inst()), rel![[2, 3], [3, 3]]);
    }

    #[test]
    fn eval_union_diff_lit_extend() {
        let u = RaExpr::rel("S", 1).union(RaExpr::Lit(rel![[9]]));
        assert_eq!(u.eval(&inst()), rel![[3], [4], [9]]);
        let d = RaExpr::rel("S", 1).diff(RaExpr::Lit(rel![[4]]));
        assert_eq!(d.eval(&inst()), rel![[3]]);
        let x = RaExpr::rel("S", 1);
        let e = RaExpr::ExtendConst(Box::new(x), vec![Constant::int(0)]);
        assert!(e.eval(&inst()).contains(&tup![3, 0]));
    }

    #[test]
    fn positive_existential_classification() {
        let pe = RaExpr::rel("R", 2)
            .select([Pred::EqConst(0, Constant::int(1))])
            .project([1])
            .union(RaExpr::rel("S", 1));
        assert!(pe.is_positive_existential());
        let with_neq = RaExpr::rel("R", 2).select([Pred::NeqCols(0, 1)]);
        assert!(!with_neq.is_positive_existential());
        let with_diff = RaExpr::rel("S", 1).diff(RaExpr::rel("S", 1));
        assert!(!with_diff.is_positive_existential());
    }

    #[test]
    fn missing_base_relation_is_empty() {
        let e = RaExpr::rel("Nope", 3);
        assert_eq!(e.eval(&inst()), Relation::empty(3));
    }

    #[test]
    fn rename_permutes_columns() {
        let e = RaExpr::Rename(Box::new(RaExpr::rel("R", 2)), vec![1, 0]);
        assert!(e.eval(&inst()).contains(&tup![2, 1]));
        assert_eq!(e.arity(), Ok(2));
    }
}
