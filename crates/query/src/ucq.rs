//! Unions of conjunctive queries (the positive existential queries), optionally with ≠.
//!
//! A conjunctive query is written rule-style:
//!
//! ```text
//! ans(x, z) :- R(x, y), S(y, z), y ≠ 0
//! ```
//!
//! A [`Ucq`] is a finite union of such queries with a common head arity.  Without ≠ atoms a
//! UCQ is exactly a positive existential query (the paper's most practical family); with ≠
//! atoms it is the "positive existential with ≠" family used in the lower bound of
//! Theorem 3.2(4).

use pw_relational::{Constant, Instance, Relation, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A query term: a named query variable or a constant.
///
/// Query variables are plain strings and live in a different namespace from the null
/// `pw_condition::Variable`s of tables.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QTerm {
    /// A query variable.
    Var(String),
    /// A constant.
    Const(Constant),
}

impl QTerm {
    /// Build a variable term.
    pub fn var(name: impl Into<String>) -> QTerm {
        QTerm::Var(name.into())
    }

    /// Build a constant term.
    pub fn constant(c: impl Into<Constant>) -> QTerm {
        QTerm::Const(c.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            QTerm::Var(v) => Some(v),
            QTerm::Const(_) => None,
        }
    }
}

impl fmt::Debug for QTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for QTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QTerm::Var(v) => write!(f, "{v}"),
            QTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<&str> for QTerm {
    fn from(value: &str) -> Self {
        QTerm::Var(value.to_owned())
    }
}

impl From<i64> for QTerm {
    fn from(value: i64) -> Self {
        QTerm::Const(Constant::Int(value))
    }
}

impl From<i32> for QTerm {
    fn from(value: i32) -> Self {
        QTerm::Const(Constant::Int(i64::from(value)))
    }
}

impl From<Constant> for QTerm {
    fn from(value: Constant) -> Self {
        QTerm::Const(value)
    }
}

/// A relational atom `R(t₁, …, tₖ)` in a query body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAtom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<QTerm>,
}

impl QueryAtom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: impl IntoIterator<Item = QTerm>) -> Self {
        QueryAtom {
            relation: relation.into(),
            terms: terms.into_iter().collect(),
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables of the atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(QTerm::as_var)
    }
}

impl fmt::Display for QueryAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Errors raised when validating a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CqError {
    /// A head variable does not occur in any body atom (unsafe query).
    UnsafeHeadVariable(String),
    /// A variable of a ≠ atom does not occur in any body atom.
    UnsafeNeqVariable(String),
    /// The same relation appears with two different arities inside the query.
    InconsistentArity(String),
    /// Two disjuncts of a UCQ have different head arities.
    MixedHeadArity,
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::UnsafeHeadVariable(v) => write!(f, "unsafe head variable {v:?}"),
            CqError::UnsafeNeqVariable(v) => write!(f, "unsafe variable {v:?} in ≠ atom"),
            CqError::InconsistentArity(r) => {
                write!(f, "relation {r:?} used with inconsistent arities")
            }
            CqError::MixedHeadArity => write!(f, "disjuncts have different head arities"),
        }
    }
}

impl std::error::Error for CqError {}

/// A conjunctive query with optional inequality atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Output terms (variables or constants).
    pub head: Vec<QTerm>,
    /// Relational atoms.
    pub body: Vec<QueryAtom>,
    /// Inequality side conditions `a ≠ b`.
    pub neq: Vec<(QTerm, QTerm)>,
}

impl ConjunctiveQuery {
    /// Build a query from head terms and body atoms (no ≠ atoms).
    pub fn new(
        head: impl IntoIterator<Item = QTerm>,
        body: impl IntoIterator<Item = QueryAtom>,
    ) -> Self {
        ConjunctiveQuery {
            head: head.into_iter().collect(),
            body: body.into_iter().collect(),
            neq: Vec::new(),
        }
    }

    /// Add an inequality side condition.
    pub fn with_neq(mut self, a: impl Into<QTerm>, b: impl Into<QTerm>) -> Self {
        self.neq.push((a.into(), b.into()));
        self
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Whether the query is positive existential in the strict sense (no ≠ atoms).
    pub fn is_positive(&self) -> bool {
        self.neq.is_empty()
    }

    /// All body variables.
    pub fn body_variables(&self) -> BTreeSet<&str> {
        self.body.iter().flat_map(QueryAtom::variables).collect()
    }

    /// Safety / well-formedness check.
    pub fn validate(&self) -> Result<(), CqError> {
        let body_vars = self.body_variables();
        for t in &self.head {
            if let Some(v) = t.as_var() {
                if !body_vars.contains(v) {
                    return Err(CqError::UnsafeHeadVariable(v.to_owned()));
                }
            }
        }
        for (a, b) in &self.neq {
            for t in [a, b] {
                if let Some(v) = t.as_var() {
                    if !body_vars.contains(v) {
                        return Err(CqError::UnsafeNeqVariable(v.to_owned()));
                    }
                }
            }
        }
        let mut arities: BTreeMap<&str, usize> = BTreeMap::new();
        for atom in &self.body {
            match arities.get(atom.relation.as_str()) {
                Some(&a) if a != atom.arity() => {
                    return Err(CqError::InconsistentArity(atom.relation.clone()))
                }
                _ => {
                    arities.insert(&atom.relation, atom.arity());
                }
            }
        }
        Ok(())
    }

    /// Evaluate on an instance, producing the set of head tuples.
    pub fn eval(&self, instance: &Instance) -> Relation {
        let mut out = Relation::empty(self.arity());
        let mut bindings: BTreeMap<&str, Constant> = BTreeMap::new();
        self.search(instance, 0, &mut bindings, &mut out);
        out
    }

    fn search<'q>(
        &'q self,
        instance: &Instance,
        depth: usize,
        bindings: &mut BTreeMap<&'q str, Constant>,
        out: &mut Relation,
    ) {
        if depth == self.body.len() {
            if self.neq_satisfied(bindings) {
                let tuple: Tuple = self
                    .head
                    .iter()
                    .map(|t| Self::resolve(t, bindings).expect("validated head variable"))
                    .collect();
                let _ = out.insert(tuple);
            }
            return;
        }
        let atom = &self.body[depth];
        let rel = instance.relation_or_empty(&atom.relation, atom.arity());
        if rel.arity() != atom.arity() {
            // Arity clash with the instance: the atom cannot match anything.
            return;
        }
        'tuples: for fact in rel.iter() {
            let mut newly_bound: Vec<&str> = Vec::new();
            for (term, value) in atom.terms.iter().zip(fact.iter()) {
                match term {
                    QTerm::Const(c) => {
                        if c != value {
                            for v in newly_bound.drain(..) {
                                bindings.remove(v);
                            }
                            continue 'tuples;
                        }
                    }
                    QTerm::Var(v) => match bindings.get(v.as_str()) {
                        Some(bound) if bound != value => {
                            for v in newly_bound.drain(..) {
                                bindings.remove(v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(v.as_str(), value.clone());
                            newly_bound.push(v.as_str());
                        }
                    },
                }
            }
            self.search(instance, depth + 1, bindings, out);
            for v in newly_bound {
                bindings.remove(v);
            }
        }
    }

    fn resolve(term: &QTerm, bindings: &BTreeMap<&str, Constant>) -> Option<Constant> {
        match term {
            QTerm::Const(c) => Some(c.clone()),
            QTerm::Var(v) => bindings.get(v.as_str()).cloned(),
        }
    }

    fn neq_satisfied(&self, bindings: &BTreeMap<&str, Constant>) -> bool {
        self.neq.iter().all(|(a, b)| {
            match (Self::resolve(a, bindings), Self::resolve(b, bindings)) {
                (Some(x), Some(y)) => x != y,
                // Safety validation guarantees both sides are bound; treat anything else
                // conservatively as failure.
                _ => false,
            }
        })
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ans(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        for (a, b) in &self.neq {
            write!(f, ", {a} ≠ {b}")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries with a common head arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ucq {
    disjuncts: Vec<ConjunctiveQuery>,
    arity: usize,
}

impl Ucq {
    /// Build a UCQ; all disjuncts must share the same head arity.
    pub fn new(disjuncts: impl IntoIterator<Item = ConjunctiveQuery>) -> Result<Self, CqError> {
        let disjuncts: Vec<ConjunctiveQuery> = disjuncts.into_iter().collect();
        let arity = disjuncts.first().map_or(0, ConjunctiveQuery::arity);
        for d in &disjuncts {
            if d.arity() != arity {
                return Err(CqError::MixedHeadArity);
            }
            d.validate()?;
        }
        Ok(Ucq { disjuncts, arity })
    }

    /// Build a UCQ of a single conjunctive query.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        Ucq::new([cq]).expect("single disjunct cannot mix arities")
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Whether every disjunct is ≠-free (strict positive existential query).
    pub fn is_positive(&self) -> bool {
        self.disjuncts.iter().all(ConjunctiveQuery::is_positive)
    }

    /// Evaluate on an instance: union of the disjuncts' answers.
    pub fn eval(&self, instance: &Instance) -> Relation {
        let mut out = Relation::empty(self.arity);
        for d in &self.disjuncts {
            for t in d.eval(instance) {
                let _ = out.insert(t);
            }
        }
        out
    }

    /// All constants mentioned anywhere in the query (heads, bodies, ≠ atoms).
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = BTreeSet::new();
        for d in &self.disjuncts {
            for t in d
                .head
                .iter()
                .chain(d.body.iter().flat_map(|a| a.terms.iter()))
                .chain(d.neq.iter().flat_map(|(a, b)| [a, b]))
            {
                if let QTerm::Const(c) = t {
                    out.insert(c.clone());
                }
            }
        }
        out
    }

    /// Relation names referenced by the query, with their arities.
    pub fn referenced_relations(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for d in &self.disjuncts {
            for a in &d.body {
                out.insert(a.relation.clone(), a.arity());
            }
        }
        out
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Convenience macro for query atoms: `qatom!("R"; "x", 1, "y")`.
#[macro_export]
macro_rules! qatom {
    ($rel:expr $(; $($t:expr),* )?) => {
        $crate::QueryAtom::new($rel, vec![$($($crate::QTerm::from($t)),*)?])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_relational::rel;

    fn path_instance() -> Instance {
        // R = {(1,2),(2,3),(3,4)}
        Instance::single("R", rel![[1, 2], [2, 3], [3, 4]])
    }

    #[test]
    fn single_atom_projection() {
        let q = ConjunctiveQuery::new([QTerm::var("x")], [qatom!("R"; "x", "y")]);
        let ans = q.eval(&path_instance());
        assert_eq!(ans, rel![[1], [2], [3]]);
    }

    #[test]
    fn join_via_shared_variable() {
        // ans(x, z) :- R(x, y), R(y, z)
        let q = ConjunctiveQuery::new(
            [QTerm::var("x"), QTerm::var("z")],
            [qatom!("R"; "x", "y"), qatom!("R"; "y", "z")],
        );
        let ans = q.eval(&path_instance());
        assert_eq!(ans, rel![[1, 3], [2, 4]]);
    }

    #[test]
    fn constants_in_body_and_head() {
        // ans(0, y) :- R(2, y)
        let q = ConjunctiveQuery::new([QTerm::constant(0), QTerm::var("y")], [qatom!("R"; 2, "y")]);
        let ans = q.eval(&path_instance());
        assert_eq!(ans, rel![[0, 3]]);
    }

    #[test]
    fn neq_side_conditions_filter() {
        // ans(x, z) :- R(x, y), R(y, z), x ≠ z  — on a path this changes nothing;
        // ans(x, z) :- R(x, y), R(y, z), x ≠ 1  drops the tuple starting at 1.
        let q = ConjunctiveQuery::new(
            [QTerm::var("x"), QTerm::var("z")],
            [qatom!("R"; "x", "y"), qatom!("R"; "y", "z")],
        )
        .with_neq("x", 1);
        let ans = q.eval(&path_instance());
        assert_eq!(ans, rel![[2, 4]]);
        assert!(!q.is_positive());
    }

    #[test]
    fn validation_catches_unsafe_queries() {
        let unsafe_head = ConjunctiveQuery::new([QTerm::var("z")], [qatom!("R"; "x", "y")]);
        assert_eq!(
            unsafe_head.validate(),
            Err(CqError::UnsafeHeadVariable("z".into()))
        );
        let unsafe_neq =
            ConjunctiveQuery::new([QTerm::var("x")], [qatom!("R"; "x", "y")]).with_neq("w", 1);
        assert_eq!(
            unsafe_neq.validate(),
            Err(CqError::UnsafeNeqVariable("w".into()))
        );
        let inconsistent =
            ConjunctiveQuery::new([QTerm::var("x")], [qatom!("R"; "x", "y"), qatom!("R"; "x")]);
        assert_eq!(
            inconsistent.validate(),
            Err(CqError::InconsistentArity("R".into()))
        );
    }

    #[test]
    fn ucq_unions_disjuncts_and_checks_arity() {
        let d1 = ConjunctiveQuery::new([QTerm::var("x")], [qatom!("R"; "x", "y")]);
        let d2 = ConjunctiveQuery::new([QTerm::var("y")], [qatom!("R"; "x", "y")]);
        let q = Ucq::new([d1.clone(), d2]).unwrap();
        let ans = q.eval(&path_instance());
        assert_eq!(ans, rel![[1], [2], [3], [4]]);
        assert!(q.is_positive());
        assert_eq!(q.arity(), 1);
        assert_eq!(q.referenced_relations().get("R"), Some(&2));

        let bad =
            ConjunctiveQuery::new([QTerm::var("x"), QTerm::var("y")], [qatom!("R"; "x", "y")]);
        assert_eq!(Ucq::new([d1, bad]).unwrap_err(), CqError::MixedHeadArity);
    }

    #[test]
    fn empty_relation_yields_empty_answer() {
        let q = ConjunctiveQuery::new([QTerm::var("x")], [qatom!("S"; "x")]);
        assert!(q.eval(&path_instance()).is_empty());
    }

    #[test]
    fn repeated_variable_in_atom_requires_equal_columns() {
        // ans(x) :- R(x, x)
        let q = ConjunctiveQuery::new([QTerm::var("x")], [qatom!("R"; "x", "x")]);
        let mut inst = path_instance();
        inst.insert_fact("R", pw_relational::tup![5, 5]).unwrap();
        assert_eq!(q.eval(&inst), rel![[5]]);
    }

    #[test]
    fn genericity_on_a_sample_renaming() {
        let q = ConjunctiveQuery::new(
            [QTerm::var("x"), QTerm::var("z")],
            [qatom!("R"; "x", "y"), qatom!("R"; "y", "z")],
        );
        let inst = path_instance();
        let renamed = inst.map_constants(|c| match c {
            Constant::Int(i) => Constant::Int(i + 100),
            c => c.clone(),
        });
        let lhs = q.eval(&renamed);
        let rhs = q.eval(&inst).map_constants(|c| match c {
            Constant::Int(i) => Constant::Int(i + 100),
            c => c.clone(),
        });
        assert_eq!(lhs, rhs);
    }
}
