//! The umbrella [`Query`] type used by the decision procedures.
//!
//! A paper query has arity `(a₁,…,aₙ) → (b₁,…,bₘ)`: it maps an instance with `n` relations
//! to an instance with `m` relations.  [`Query`] is therefore a *named vector of output
//! definitions*, each given in one of the concrete languages of this crate, plus the
//! identity query "−" that the paper writes `MEMB(-)`, `CONT(-,-)`, etc.

use crate::datalog::DatalogProgram;
use crate::fo::FoQuery;
use crate::ra::RaExpr;
use crate::ucq::Ucq;
use pw_relational::{Instance, Relation};
use std::fmt;

/// Classification of a query into the paper's families, ordered from most restricted to
/// most general.  The classification drives algorithm selection in `pw-decide`: e.g.
/// bounded possibility is PTIME for [`QueryClass::PositiveExistential`] on c-tables
/// (Theorem 5.2(1)) but NP-complete already for first order or Datalog queries on tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryClass {
    /// The identity query "−".
    Identity,
    /// Positive existential (project/join/union/rename/positive select; UCQ without ≠).
    PositiveExistential,
    /// Positive existential extended with ≠ atoms (Theorem 3.2(4)'s query family).
    PositiveExistentialNeq,
    /// Pure Datalog (fixpoints of positive existential queries).
    Datalog,
    /// Full first order (relational calculus with negation).
    FirstOrder,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryClass::Identity => "identity",
            QueryClass::PositiveExistential => "positive existential",
            QueryClass::PositiveExistentialNeq => "positive existential with ≠",
            QueryClass::Datalog => "datalog",
            QueryClass::FirstOrder => "first order",
        };
        write!(f, "{s}")
    }
}

/// Errors raised when assembling a [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// An output definition failed its own validation.
    Invalid(String),
    /// Two outputs share the same name.
    DuplicateOutput(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Invalid(m) => write!(f, "invalid query: {m}"),
            QueryError::DuplicateOutput(n) => write!(f, "duplicate output relation {n:?}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The definition of one output relation of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryDef {
    /// Copy an input relation unchanged.
    Identity {
        /// Input relation to copy.
        relation: String,
        /// Its arity.
        arity: usize,
    },
    /// A union of conjunctive queries (possibly with ≠).
    Ucq(Ucq),
    /// A relational algebra expression.
    Ra(RaExpr),
    /// A first order query.
    Fo(FoQuery),
    /// A Datalog program.
    Datalog(DatalogProgram),
}

impl QueryDef {
    /// The output arity of this definition.
    pub fn arity(&self) -> usize {
        match self {
            QueryDef::Identity { arity, .. } => *arity,
            QueryDef::Ucq(q) => q.arity(),
            QueryDef::Ra(e) => e.arity().unwrap_or(0),
            QueryDef::Fo(q) => q.arity(),
            QueryDef::Datalog(p) => p.output_arity(),
        }
    }

    /// The query class of this definition.
    pub fn class(&self) -> QueryClass {
        match self {
            QueryDef::Identity { .. } => QueryClass::Identity,
            QueryDef::Ucq(q) => {
                if q.is_positive() {
                    QueryClass::PositiveExistential
                } else {
                    QueryClass::PositiveExistentialNeq
                }
            }
            QueryDef::Ra(e) => {
                if e.is_positive_existential() {
                    QueryClass::PositiveExistential
                } else {
                    QueryClass::FirstOrder
                }
            }
            QueryDef::Fo(_) => QueryClass::FirstOrder,
            QueryDef::Datalog(_) => QueryClass::Datalog,
        }
    }

    /// All constants mentioned by the definition — part of the evaluation domain Δ used by
    /// the decision procedures (Proposition 2.1).
    pub fn constants(&self) -> std::collections::BTreeSet<pw_relational::Constant> {
        match self {
            QueryDef::Identity { .. } => std::collections::BTreeSet::new(),
            QueryDef::Ucq(q) => q.constants(),
            QueryDef::Ra(e) => e.constants(),
            QueryDef::Fo(q) => q.constants(),
            QueryDef::Datalog(p) => p.constants(),
        }
    }

    /// Evaluate this definition on an instance.
    pub fn eval(&self, instance: &Instance) -> Relation {
        match self {
            QueryDef::Identity { relation, arity } => instance.relation_or_empty(relation, *arity),
            QueryDef::Ucq(q) => q.eval(instance),
            QueryDef::Ra(e) => e.eval(instance),
            QueryDef::Fo(q) => q.eval(instance),
            QueryDef::Datalog(p) => p.eval(instance),
        }
    }
}

/// A query: a vector of named output relations, each defined by a [`QueryDef`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    outputs: Vec<(String, QueryDef)>,
}

impl Query {
    /// Build a query from `(output name, definition)` pairs.
    pub fn new(outputs: impl IntoIterator<Item = (String, QueryDef)>) -> Result<Self, QueryError> {
        let outputs: Vec<(String, QueryDef)> = outputs.into_iter().collect();
        let mut seen = std::collections::BTreeSet::new();
        for (name, def) in &outputs {
            if !seen.insert(name.clone()) {
                return Err(QueryError::DuplicateOutput(name.clone()));
            }
            if let QueryDef::Ra(e) = def {
                e.arity()
                    .map_err(|err| QueryError::Invalid(err.to_string()))?;
            }
        }
        Ok(Query { outputs })
    }

    /// The identity query over the given `(relation, arity)` schema — the paper's "−".
    pub fn identity(schema: impl IntoIterator<Item = (String, usize)>) -> Self {
        Query {
            outputs: schema
                .into_iter()
                .map(|(relation, arity)| (relation.clone(), QueryDef::Identity { relation, arity }))
                .collect(),
        }
    }

    /// A query with a single output relation.
    pub fn single(name: impl Into<String>, def: QueryDef) -> Self {
        Query {
            outputs: vec![(name.into(), def)],
        }
    }

    /// The outputs.
    pub fn outputs(&self) -> &[(String, QueryDef)] {
        &self.outputs
    }

    /// Whether this is the identity query.
    pub fn is_identity(&self) -> bool {
        self.class() == QueryClass::Identity
    }

    /// The query class: the most general class among the outputs.
    pub fn class(&self) -> QueryClass {
        self.outputs
            .iter()
            .map(|(_, d)| d.class())
            .max()
            .unwrap_or(QueryClass::Identity)
    }

    /// All constants mentioned by any output definition.
    pub fn constants(&self) -> std::collections::BTreeSet<pw_relational::Constant> {
        self.outputs
            .iter()
            .flat_map(|(_, d)| d.constants())
            .collect()
    }

    /// Evaluate: produce the output instance.
    pub fn eval(&self, instance: &Instance) -> Instance {
        Instance::from_relations(
            self.outputs
                .iter()
                .map(|(name, def)| (name.clone(), def.eval(instance))),
        )
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, def)) in self.outputs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{name}/{} := {}", def.arity(), def.class())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucq::{ConjunctiveQuery, QTerm};
    use crate::{qatom, Formula};
    use pw_relational::rel;

    fn inst() -> Instance {
        Instance::single("E", rel![[1, 2], [2, 3]])
    }

    #[test]
    fn identity_query_copies_relations() {
        let q = Query::identity([("E".to_owned(), 2)]);
        assert!(q.is_identity());
        assert_eq!(q.class(), QueryClass::Identity);
        assert!(q.eval(&inst()).same_facts(&inst()));
    }

    #[test]
    fn multi_output_query_and_classification() {
        let q1 = QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("x")],
            [qatom!("E"; "x", "y")],
        )));
        let q2 = QueryDef::Fo(FoQuery::boolean(
            1,
            Formula::exists(
                ["x"],
                Formula::atom("E", [QTerm::var("x"), QTerm::var("x")]),
            ),
        ));
        let q = Query::new([("Sources".to_owned(), q1), ("HasLoop".to_owned(), q2)]).unwrap();
        assert_eq!(q.class(), QueryClass::FirstOrder);
        let out = q.eval(&inst());
        assert_eq!(out.relation("Sources").unwrap(), &rel![[1], [2]]);
        assert!(out.relation("HasLoop").unwrap().is_empty());
    }

    #[test]
    fn duplicate_outputs_are_rejected() {
        let def = QueryDef::Identity {
            relation: "E".into(),
            arity: 2,
        };
        let err = Query::new([("A".to_owned(), def.clone()), ("A".to_owned(), def)]).unwrap_err();
        assert_eq!(err, QueryError::DuplicateOutput("A".into()));
    }

    #[test]
    fn class_ordering_reflects_generality() {
        assert!(QueryClass::Identity < QueryClass::PositiveExistential);
        assert!(QueryClass::PositiveExistential < QueryClass::PositiveExistentialNeq);
        assert!(QueryClass::PositiveExistentialNeq < QueryClass::Datalog);
        assert!(QueryClass::Datalog < QueryClass::FirstOrder);
    }

    #[test]
    fn datalog_output_class_and_eval() {
        let q = Query::single(
            "TC",
            QueryDef::Datalog(DatalogProgram::transitive_closure("E", "TC")),
        );
        assert_eq!(q.class(), QueryClass::Datalog);
        let out = q.eval(&inst());
        assert_eq!(out.relation("TC").unwrap().len(), 3);
    }

    #[test]
    fn invalid_ra_is_rejected_at_construction() {
        let bad = QueryDef::Ra(RaExpr::rel("E", 2).project([7]));
        assert!(matches!(
            Query::new([("Out".to_owned(), bad)]),
            Err(QueryError::Invalid(_))
        ));
    }
}
