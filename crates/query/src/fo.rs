//! First order queries with active-domain semantics.
//!
//! The paper's first order queries are "formulas of first order logic with equality, i.e.
//! ≠ can be used" (Section 2.1(2)).  We evaluate them under the standard *active domain*
//! semantics: quantifiers range over the constants appearing in the instance or in the
//! query.  For a fixed query this is PTIME in the size of the instance (data-complexity),
//! and it is generic because the active domain is closed under constant renamings that fix
//! the query constants.

use crate::ucq::QTerm;
use pw_relational::{Constant, Instance, Relation, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first order formula over relational atoms and (in)equalities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// Relational atom `R(t₁,…,tₖ)`.
    Atom(String, Vec<QTerm>),
    /// Equality `a = b`.
    Eq(QTerm, QTerm),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
    /// Existential quantification over the named variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over the named variables.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// `a ≠ b` as syntactic sugar for `¬(a = b)`.
    pub fn neq(a: impl Into<QTerm>, b: impl Into<QTerm>) -> Formula {
        Formula::Not(Box::new(Formula::Eq(a.into(), b.into())))
    }

    /// Relational atom helper.
    pub fn atom(relation: impl Into<String>, terms: impl IntoIterator<Item = QTerm>) -> Formula {
        Formula::Atom(relation.into(), terms.into_iter().collect())
    }

    /// Conjunction helper.
    pub fn and(items: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::And(items.into_iter().collect())
    }

    /// Disjunction helper.
    pub fn or(items: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::Or(items.into_iter().collect())
    }

    /// Existential quantification helper.
    pub fn exists(vars: impl IntoIterator<Item = &'static str>, body: Formula) -> Formula {
        Formula::Exists(
            vars.into_iter().map(str::to_owned).collect(),
            Box::new(body),
        )
    }

    /// Universal quantification helper.
    pub fn forall(vars: impl IntoIterator<Item = &'static str>, body: Formula) -> Formula {
        Formula::Forall(
            vars.into_iter().map(str::to_owned).collect(),
            Box::new(body),
        )
    }

    /// Free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let QTerm::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let QTerm::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(vars, f) | Formula::Forall(vars, f) => {
                let newly: Vec<String> = vars
                    .iter()
                    .filter(|v| bound.insert((*v).clone()))
                    .cloned()
                    .collect();
                f.collect_free(bound, out);
                for v in newly {
                    bound.remove(&v);
                }
            }
        }
    }

    /// Constants mentioned by the formula.
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<Constant>) {
        match self {
            Formula::Atom(_, terms) => {
                for t in terms {
                    if let QTerm::Const(c) = t {
                        out.insert(c.clone());
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let QTerm::Const(c) = t {
                        out.insert(c.clone());
                    }
                }
            }
            Formula::Not(f) => f.collect_constants(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_constants(out);
                }
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_constants(out),
        }
    }

    fn holds(
        &self,
        instance: &Instance,
        domain: &[Constant],
        env: &mut BTreeMap<String, Constant>,
    ) -> bool {
        match self {
            Formula::Atom(rel, terms) => {
                let values: Option<Vec<Constant>> = terms
                    .iter()
                    .map(|t| match t {
                        QTerm::Const(c) => Some(c.clone()),
                        QTerm::Var(v) => env.get(v).cloned(),
                    })
                    .collect();
                match values {
                    Some(vals) => instance.contains_fact(rel, &Tuple::new(vals)),
                    // An unbound variable in an atom means the formula is not range
                    // restricted under the current environment; treat as false.
                    None => false,
                }
            }
            Formula::Eq(a, b) => {
                let value = |t: &QTerm| match t {
                    QTerm::Const(c) => Some(c.clone()),
                    QTerm::Var(v) => env.get(v).cloned(),
                };
                match (value(a), value(b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                }
            }
            Formula::Not(f) => !f.holds(instance, domain, env),
            Formula::And(fs) => fs.iter().all(|f| f.holds(instance, domain, env)),
            Formula::Or(fs) => fs.iter().any(|f| f.holds(instance, domain, env)),
            Formula::Exists(vars, f) => Self::quantify(vars, true, f, instance, domain, env),
            Formula::Forall(vars, f) => Self::quantify(vars, false, f, instance, domain, env),
        }
    }

    fn quantify(
        vars: &[String],
        existential: bool,
        f: &Formula,
        instance: &Instance,
        domain: &[Constant],
        env: &mut BTreeMap<String, Constant>,
    ) -> bool {
        fn rec(
            vars: &[String],
            idx: usize,
            existential: bool,
            f: &Formula,
            instance: &Instance,
            domain: &[Constant],
            env: &mut BTreeMap<String, Constant>,
        ) -> bool {
            if idx == vars.len() {
                return f.holds(instance, domain, env);
            }
            let var = &vars[idx];
            let saved = env.get(var).cloned();
            for c in domain {
                env.insert(var.clone(), c.clone());
                let sub = rec(vars, idx + 1, existential, f, instance, domain, env);
                if sub == existential {
                    restore(env, var, saved);
                    return existential;
                }
            }
            restore(env, var, saved);
            !existential
        }
        fn restore(env: &mut BTreeMap<String, Constant>, var: &str, saved: Option<Constant>) {
            match saved {
                Some(v) => {
                    env.insert(var.to_owned(), v);
                }
                None => {
                    env.remove(var);
                }
            }
        }
        rec(vars, 0, existential, f, instance, domain, env)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(r, ts) => {
                write!(f, "{r}(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(vs, inner) => write!(f, "∃{} {inner}", vs.join(",")),
            Formula::Forall(vs, inner) => write!(f, "∀{} {inner}", vs.join(",")),
        }
    }
}

/// A first order query `{ head | formula }` with active-domain evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoQuery {
    /// Output terms; free variables of the head are enumerated over the active domain.
    pub head: Vec<QTerm>,
    /// The defining formula; its free variables must be exactly the head variables.
    pub formula: Formula,
}

impl FoQuery {
    /// Build a query.
    pub fn new(head: impl IntoIterator<Item = QTerm>, formula: Formula) -> Self {
        FoQuery {
            head: head.into_iter().collect(),
            formula,
        }
    }

    /// A boolean query `{ c | formula }` that outputs the constant tuple `(c)` when the
    /// (closed) formula holds — the shape used by the paper's reductions (`q′ = {1 | ψ}`).
    pub fn boolean(output: impl Into<Constant>, formula: Formula) -> Self {
        FoQuery {
            head: vec![QTerm::Const(output.into())],
            formula,
        }
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// All constants mentioned by the query (head and formula).
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = self.formula.constants();
        for t in &self.head {
            if let QTerm::Const(c) = t {
                out.insert(c.clone());
            }
        }
        out
    }

    /// Evaluate under active-domain semantics.
    pub fn eval(&self, instance: &Instance) -> Relation {
        let mut domain: BTreeSet<Constant> = instance.active_domain();
        domain.extend(self.formula.constants());
        for t in &self.head {
            if let QTerm::Const(c) = t {
                domain.insert(c.clone());
            }
        }
        let domain: Vec<Constant> = domain.into_iter().collect();

        let head_vars: Vec<String> = {
            let mut seen = BTreeSet::new();
            self.head
                .iter()
                .filter_map(|t| t.as_var().map(str::to_owned))
                .filter(|v| seen.insert(v.clone()))
                .collect()
        };

        let mut out = Relation::empty(self.arity());
        let mut env: BTreeMap<String, Constant> = BTreeMap::new();
        self.enumerate(instance, &domain, &head_vars, 0, &mut env, &mut out);
        out
    }

    fn enumerate(
        &self,
        instance: &Instance,
        domain: &[Constant],
        head_vars: &[String],
        idx: usize,
        env: &mut BTreeMap<String, Constant>,
        out: &mut Relation,
    ) {
        if idx == head_vars.len() {
            if self.formula.holds(instance, domain, env) {
                let tuple: Tuple = self
                    .head
                    .iter()
                    .map(|t| match t {
                        QTerm::Const(c) => c.clone(),
                        QTerm::Var(v) => env[v].clone(),
                    })
                    .collect();
                let _ = out.insert(tuple);
            }
            return;
        }
        for c in domain {
            env.insert(head_vars[idx].clone(), c.clone());
            self.enumerate(instance, domain, head_vars, idx + 1, env, out);
        }
        env.remove(&head_vars[idx]);
    }
}

impl fmt::Display for FoQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{(")?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") | {}}}", self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_relational::rel;

    fn graph() -> Instance {
        Instance::single("E", rel![[1, 2], [2, 3], [3, 1], [4, 4]])
    }

    #[test]
    fn existential_query_finds_two_step_paths() {
        // {(x, z) | ∃y E(x,y) ∧ E(y,z)}
        let q = FoQuery::new(
            [QTerm::var("x"), QTerm::var("z")],
            Formula::exists(
                ["y"],
                Formula::and([
                    Formula::atom("E", [QTerm::var("x"), QTerm::var("y")]),
                    Formula::atom("E", [QTerm::var("y"), QTerm::var("z")]),
                ]),
            ),
        );
        let ans = q.eval(&graph());
        assert!(ans.contains(&pw_relational::tup![1, 3]));
        assert!(ans.contains(&pw_relational::tup![4, 4]));
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn negation_finds_non_edges() {
        // {(x) | ∃y E(x,y) ∧ ¬E(x,x)} — sources that are not self-loops
        let q = FoQuery::new(
            [QTerm::var("x")],
            Formula::and([
                Formula::exists(
                    ["y"],
                    Formula::atom("E", [QTerm::var("x"), QTerm::var("y")]),
                ),
                Formula::Not(Box::new(Formula::atom(
                    "E",
                    [QTerm::var("x"), QTerm::var("x")],
                ))),
            ]),
        );
        assert_eq!(q.eval(&graph()), rel![[1], [2], [3]]);
    }

    #[test]
    fn universal_quantification_over_active_domain() {
        // {(x) | ∀y (E(y,y) ∨ ¬E(x,y))} — x whose successors are all self-loops
        let q = FoQuery::new(
            [QTerm::var("x")],
            Formula::forall(
                ["y"],
                Formula::or([
                    Formula::atom("E", [QTerm::var("y"), QTerm::var("y")]),
                    Formula::Not(Box::new(Formula::atom(
                        "E",
                        [QTerm::var("x"), QTerm::var("y")],
                    ))),
                ]),
            ),
        );
        // 4 → 4 (self-loop) qualifies; vertices 1,2,3 have a non-self-loop successor; the
        // remaining domain elements have no successors at all and qualify vacuously.
        let ans = q.eval(&graph());
        assert!(ans.contains(&pw_relational::tup![4]));
        assert!(!ans.contains(&pw_relational::tup![1]));
    }

    #[test]
    fn boolean_query_emits_constant_when_formula_holds() {
        // {1 | ∃x E(x,x)}
        let q = FoQuery::boolean(
            1,
            Formula::exists(
                ["x"],
                Formula::atom("E", [QTerm::var("x"), QTerm::var("x")]),
            ),
        );
        assert_eq!(q.eval(&graph()), rel![[1]]);
        let q2 = FoQuery::boolean(
            1,
            Formula::exists(
                ["x"],
                Formula::and([
                    Formula::atom("E", [QTerm::var("x"), QTerm::var("x")]),
                    Formula::neq("x", 4),
                ]),
            ),
        );
        assert!(q2.eval(&graph()).is_empty());
    }

    #[test]
    fn free_variables_and_constants() {
        let f = Formula::exists(
            ["y"],
            Formula::and([
                Formula::atom("E", [QTerm::var("x"), QTerm::var("y")]),
                Formula::neq("y", 7),
            ]),
        );
        assert_eq!(f.free_variables(), ["x".to_owned()].into());
        assert_eq!(f.constants(), [Constant::int(7)].into());
    }

    #[test]
    fn display_is_readable() {
        let q = FoQuery::boolean(1, Formula::neq("x", 0));
        let s = q.to_string();
        assert!(s.contains('¬'));
        assert!(s.contains('|'));
    }
}
