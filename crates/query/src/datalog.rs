//! Pure DATALOG: fixpoints of positive existential queries.
//!
//! Section 2.1(3): "DATALOG queries are denoted here using fixpoints of positive
//! existential queries, i.e., we only use 'pure' DATALOG queries without ≠."
//!
//! A [`DatalogProgram`] is a set of rules `H(ū) :- B₁(v̄₁), …, Bₖ(v̄ₖ)` without negation or
//! ≠.  Evaluation computes the least fixpoint containing the EDB (the input instance) and
//! returns the designated output relation.  Both naive and semi-naive evaluation are
//! provided; they agree (a property the tests and an ablation bench exercise), semi-naive
//! simply avoids re-deriving known facts.

use crate::ucq::QTerm;
use pw_relational::{Constant, Instance, Relation, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An atom in a Datalog rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DlAtom {
    /// Relation (EDB or IDB) name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<QTerm>,
}

impl DlAtom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: impl IntoIterator<Item = QTerm>) -> Self {
        DlAtom {
            relation: relation.into(),
            terms: terms.into_iter().collect(),
        }
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(QTerm::as_var)
    }
}

impl fmt::Display for DlAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A Datalog rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DlRule {
    /// Head atom (an IDB relation).
    pub head: DlAtom,
    /// Body atoms.
    pub body: Vec<DlAtom>,
}

impl DlRule {
    /// Build a rule.
    pub fn new(head: DlAtom, body: impl IntoIterator<Item = DlAtom>) -> Self {
        DlRule {
            head,
            body: body.into_iter().collect(),
        }
    }

    /// Safety: every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        let body_vars: BTreeSet<&str> = self.body.iter().flat_map(DlAtom::variables).collect();
        self.head.variables().all(|v| body_vars.contains(v))
    }
}

impl fmt::Display for DlRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Errors raised when validating a Datalog program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule has a head variable not bound in its body.
    UnsafeRule(String),
    /// A relation is used with two different arities.
    InconsistentArity(String),
    /// The output relation never appears in any rule head or body.
    UnknownOutput(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::UnsafeRule(r) => write!(f, "unsafe rule: {r}"),
            DatalogError::InconsistentArity(r) => {
                write!(f, "relation {r:?} used with inconsistent arities")
            }
            DatalogError::UnknownOutput(r) => write!(f, "output relation {r:?} never mentioned"),
        }
    }
}

impl std::error::Error for DatalogError {}

/// Which fixpoint algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FixpointStrategy {
    /// Re-evaluate every rule against the whole database each round.
    Naive,
    /// Only join against facts derived in the previous round (default).
    #[default]
    SemiNaive,
}

/// A pure Datalog program with a designated output relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatalogProgram {
    rules: Vec<DlRule>,
    output: String,
    output_arity: usize,
}

impl DatalogProgram {
    /// Build and validate a program.
    pub fn new(
        rules: impl IntoIterator<Item = DlRule>,
        output: impl Into<String>,
        output_arity: usize,
    ) -> Result<Self, DatalogError> {
        let rules: Vec<DlRule> = rules.into_iter().collect();
        let output = output.into();
        let mut arities: BTreeMap<&str, usize> = BTreeMap::new();
        let mut mentioned = false;
        for rule in &rules {
            if !rule.is_safe() {
                return Err(DatalogError::UnsafeRule(rule.to_string()));
            }
            for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
                match arities.get(atom.relation.as_str()) {
                    Some(&a) if a != atom.arity() => {
                        return Err(DatalogError::InconsistentArity(atom.relation.clone()))
                    }
                    _ => {
                        arities.insert(&atom.relation, atom.arity());
                    }
                }
                if atom.relation == output {
                    if atom.arity() != output_arity {
                        return Err(DatalogError::InconsistentArity(output));
                    }
                    mentioned = true;
                }
            }
        }
        if !mentioned {
            return Err(DatalogError::UnknownOutput(output));
        }
        Ok(DatalogProgram {
            rules,
            output,
            output_arity,
        })
    }

    /// The rules.
    pub fn rules(&self) -> &[DlRule] {
        &self.rules
    }

    /// Output relation name.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Output relation arity.
    pub fn output_arity(&self) -> usize {
        self.output_arity
    }

    /// IDB relation names (heads of rules).
    pub fn idb_relations(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect()
    }

    /// All constants mentioned in the rules.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.rules
            .iter()
            .flat_map(|r| std::iter::once(&r.head).chain(r.body.iter()))
            .flat_map(|a| a.terms.iter())
            .filter_map(|t| match t {
                QTerm::Const(c) => Some(c.clone()),
                QTerm::Var(_) => None,
            })
            .collect()
    }

    /// Evaluate with the default (semi-naive) strategy and return the output relation.
    pub fn eval(&self, instance: &Instance) -> Relation {
        self.eval_with(instance, FixpointStrategy::SemiNaive)
    }

    /// Evaluate the least fixpoint and return the full instance (EDB ∪ IDB).
    pub fn fixpoint(&self, instance: &Instance, strategy: FixpointStrategy) -> Instance {
        match strategy {
            FixpointStrategy::Naive => self.fixpoint_naive(instance),
            FixpointStrategy::SemiNaive => self.fixpoint_semi_naive(instance),
        }
    }

    /// Evaluate with an explicit strategy and return the output relation.
    pub fn eval_with(&self, instance: &Instance, strategy: FixpointStrategy) -> Relation {
        self.fixpoint(instance, strategy)
            .relation_or_empty(&self.output, self.output_arity)
    }

    fn fixpoint_naive(&self, instance: &Instance) -> Instance {
        let mut db = instance.clone();
        loop {
            let mut added = false;
            for rule in &self.rules {
                for fact in Self::rule_matches(rule, &db, None) {
                    if db
                        .insert_fact(rule.head.relation.clone(), fact)
                        .unwrap_or(false)
                    {
                        added = true;
                    }
                }
            }
            if !added {
                return db;
            }
        }
    }

    fn fixpoint_semi_naive(&self, instance: &Instance) -> Instance {
        let mut db = instance.clone();
        // Round 0: fire every rule once against the EDB.
        let mut delta: BTreeMap<String, Relation> = BTreeMap::new();
        for rule in &self.rules {
            for fact in Self::rule_matches(rule, &db, None) {
                if db
                    .insert_fact(rule.head.relation.clone(), fact.clone())
                    .unwrap_or(false)
                {
                    delta
                        .entry(rule.head.relation.clone())
                        .or_insert_with(|| Relation::empty(fact.arity()))
                        .insert(fact)
                        .expect("delta arity");
                }
            }
        }
        // Subsequent rounds: every derivation must use at least one delta fact.
        while !delta.is_empty() {
            let mut next_delta: BTreeMap<String, Relation> = BTreeMap::new();
            for rule in &self.rules {
                // For each body position, restrict that position to the delta of its
                // relation (if any) while the others range over the full database.
                for (pos, atom) in rule.body.iter().enumerate() {
                    let Some(delta_rel) = delta.get(&atom.relation) else {
                        continue;
                    };
                    if delta_rel.is_empty() {
                        continue;
                    }
                    for fact in Self::rule_matches(rule, &db, Some((pos, delta_rel))) {
                        if db
                            .insert_fact(rule.head.relation.clone(), fact.clone())
                            .unwrap_or(false)
                        {
                            next_delta
                                .entry(rule.head.relation.clone())
                                .or_insert_with(|| Relation::empty(fact.arity()))
                                .insert(fact)
                                .expect("delta arity");
                        }
                    }
                }
            }
            delta = next_delta;
        }
        db
    }

    /// All head facts derivable by one application of `rule` against `db`.  When
    /// `delta_at` is `Some((pos, rel))`, body atom `pos` ranges over `rel` instead of the
    /// full relation (the semi-naive restriction).
    fn rule_matches(
        rule: &DlRule,
        db: &Instance,
        delta_at: Option<(usize, &Relation)>,
    ) -> Vec<Tuple> {
        let mut out = Vec::new();
        let mut bindings: BTreeMap<&str, Constant> = BTreeMap::new();
        Self::match_body(rule, db, delta_at, 0, &mut bindings, &mut out);
        out
    }

    fn match_body<'r>(
        rule: &'r DlRule,
        db: &Instance,
        delta_at: Option<(usize, &Relation)>,
        depth: usize,
        bindings: &mut BTreeMap<&'r str, Constant>,
        out: &mut Vec<Tuple>,
    ) {
        if depth == rule.body.len() {
            let fact: Tuple = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    QTerm::Const(c) => c.clone(),
                    QTerm::Var(v) => bindings[v.as_str()].clone(),
                })
                .collect();
            out.push(fact);
            return;
        }
        let atom = &rule.body[depth];
        let full;
        let rel: &Relation = match delta_at {
            Some((pos, delta_rel)) if pos == depth => delta_rel,
            _ => {
                full = db.relation_or_empty(&atom.relation, atom.arity());
                &full
            }
        };
        if rel.arity() != atom.arity() {
            return;
        }
        'tuples: for fact in rel.iter() {
            let mut newly_bound: Vec<&str> = Vec::new();
            for (term, value) in atom.terms.iter().zip(fact.iter()) {
                match term {
                    QTerm::Const(c) => {
                        if c != value {
                            for v in newly_bound.drain(..) {
                                bindings.remove(v);
                            }
                            continue 'tuples;
                        }
                    }
                    QTerm::Var(v) => match bindings.get(v.as_str()) {
                        Some(bound) if bound != value => {
                            for v in newly_bound.drain(..) {
                                bindings.remove(v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(v.as_str(), value.clone());
                            newly_bound.push(v.as_str());
                        }
                    },
                }
            }
            Self::match_body(rule, db, delta_at, depth + 1, bindings, out);
            for v in newly_bound {
                bindings.remove(v);
            }
        }
    }

    /// The transitive closure program over an edge relation — the classic Datalog example
    /// and the query family the paper mentions for POSS(1, transitive-closure).
    ///
    /// ```text
    /// TC(x, y) :- E(x, y).
    /// TC(x, z) :- TC(x, y), E(y, z).
    /// ```
    pub fn transitive_closure(edge: &str, output: &str) -> DatalogProgram {
        let rules = vec![
            DlRule::new(
                DlAtom::new(output, [QTerm::var("x"), QTerm::var("y")]),
                [DlAtom::new(edge, [QTerm::var("x"), QTerm::var("y")])],
            ),
            DlRule::new(
                DlAtom::new(output, [QTerm::var("x"), QTerm::var("z")]),
                [
                    DlAtom::new(output, [QTerm::var("x"), QTerm::var("y")]),
                    DlAtom::new(edge, [QTerm::var("y"), QTerm::var("z")]),
                ],
            ),
        ];
        DatalogProgram::new(rules, output, 2).expect("transitive closure is well formed")
    }
}

impl fmt::Display for DatalogProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}.")?;
        }
        write!(f, "output: {}/{}", self.output, self.output_arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_relational::rel;

    fn chain(n: i64) -> Instance {
        let mut r = Relation::empty(2);
        for i in 0..n {
            r.insert(pw_relational::tup![i, i + 1]).unwrap();
        }
        Instance::single("E", r)
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let prog = DatalogProgram::transitive_closure("E", "TC");
        let tc = prog.eval(&chain(4));
        // 4+3+2+1 = 10 pairs
        assert_eq!(tc.len(), 10);
        assert!(tc.contains(&pw_relational::tup![0, 4]));
        assert!(!tc.contains(&pw_relational::tup![4, 0]));
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let prog = DatalogProgram::transitive_closure("E", "TC");
        let mut inst = chain(5);
        inst.insert_fact("E", pw_relational::tup![5, 0]).unwrap(); // close the cycle
        let a = prog.eval_with(&inst, FixpointStrategy::Naive);
        let b = prog.eval_with(&inst, FixpointStrategy::SemiNaive);
        assert_eq!(a, b);
        assert_eq!(a.len(), 36, "complete closure of a 6-cycle");
    }

    #[test]
    fn constants_in_rules_restrict_matches() {
        // Q(x) :- E(0, x)
        let prog = DatalogProgram::new(
            [DlRule::new(
                DlAtom::new("Q", [QTerm::var("x")]),
                [DlAtom::new("E", [QTerm::constant(0), QTerm::var("x")])],
            )],
            "Q",
            1,
        )
        .unwrap();
        assert_eq!(prog.eval(&chain(3)), rel![[1]]);
    }

    #[test]
    fn validation_rejects_unsafe_and_inconsistent_programs() {
        let unsafe_rule = DlRule::new(
            DlAtom::new("Q", [QTerm::var("x"), QTerm::var("z")]),
            [DlAtom::new("E", [QTerm::var("x"), QTerm::var("y")])],
        );
        assert!(matches!(
            DatalogProgram::new([unsafe_rule], "Q", 2),
            Err(DatalogError::UnsafeRule(_))
        ));

        let inconsistent = DlRule::new(
            DlAtom::new("Q", [QTerm::var("x")]),
            [
                DlAtom::new("E", [QTerm::var("x"), QTerm::var("y")]),
                DlAtom::new("E", [QTerm::var("x")]),
            ],
        );
        assert!(matches!(
            DatalogProgram::new([inconsistent], "Q", 1),
            Err(DatalogError::InconsistentArity(_))
        ));

        let fine = DlRule::new(
            DlAtom::new("Q", [QTerm::var("x")]),
            [DlAtom::new("E", [QTerm::var("x"), QTerm::var("y")])],
        );
        assert!(matches!(
            DatalogProgram::new([fine], "Nope", 1),
            Err(DatalogError::UnknownOutput(_))
        ));
    }

    #[test]
    fn idb_relations_and_accessors() {
        let prog = DatalogProgram::transitive_closure("E", "TC");
        assert_eq!(prog.output(), "TC");
        assert_eq!(prog.output_arity(), 2);
        assert!(prog.idb_relations().contains("TC"));
        assert_eq!(prog.rules().len(), 2);
    }

    #[test]
    fn mutually_recursive_program() {
        // Even/odd distance from node 0 along a chain.
        // Even(x) :- Zero(x).      Odd(y) :- Even(x), E(x, y).     Even(y) :- Odd(x), E(x, y).
        let rules = vec![
            DlRule::new(
                DlAtom::new("Even", [QTerm::var("x")]),
                [DlAtom::new("Zero", [QTerm::var("x")])],
            ),
            DlRule::new(
                DlAtom::new("Odd", [QTerm::var("y")]),
                [
                    DlAtom::new("Even", [QTerm::var("x")]),
                    DlAtom::new("E", [QTerm::var("x"), QTerm::var("y")]),
                ],
            ),
            DlRule::new(
                DlAtom::new("Even", [QTerm::var("y")]),
                [
                    DlAtom::new("Odd", [QTerm::var("x")]),
                    DlAtom::new("E", [QTerm::var("x"), QTerm::var("y")]),
                ],
            ),
        ];
        let prog = DatalogProgram::new(rules, "Even", 1).unwrap();
        let mut inst = chain(6);
        inst.insert_fact("Zero", pw_relational::tup![0]).unwrap();
        let even = prog.eval(&inst);
        assert_eq!(even, rel![[0], [2], [4], [6]]);
    }
}
