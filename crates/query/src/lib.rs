//! # `pw-query` — the paper's query languages over complete information databases
//!
//! Section 2.1 of the paper works with QPTIME queries — computable, generic queries with
//! polynomial-time data-complexity — and singles out three concrete subfamilies that every
//! theorem refers to:
//!
//! 1. **positive existential queries** — project / natural join / union / renaming /
//!    positive select; equivalently, unions of conjunctive queries.  Implemented as
//!    [`Ucq`] (with an optional ≠ extension used by Theorem 3.2(4)) and as the ≠- and
//!    difference-free fragment of [`RaExpr`];
//! 2. **first order queries** — relational calculus with negation; implemented as
//!    [`FoQuery`] with active-domain semantics and as full [`RaExpr`];
//! 3. **DATALOG queries** — fixpoints of positive existential queries; implemented as
//!    [`DatalogProgram`] with naive and semi-naive evaluation.
//!
//! [`Query`] is the umbrella type used by the decision procedures: a named vector of output
//! relations, each defined in one of the languages above (the paper's queries of arity
//! (a₁,…,aₙ) → (b₁,…,bₘ)), plus the identity query "−".
//!
//! All evaluators have PTIME data-complexity for a fixed query, and are *generic*
//! (commute with renamings of constants) — properties exercised by this crate's tests.

pub mod datalog;
pub mod fo;
pub mod ra;
pub mod ucq;

mod umbrella;

pub use datalog::{DatalogProgram, DlAtom, DlRule};
pub use fo::{FoQuery, Formula};
pub use ra::RaExpr;
pub use ucq::{ConjunctiveQuery, QTerm, QueryAtom, Ucq};
pub use umbrella::{Query, QueryClass, QueryDef, QueryError};
