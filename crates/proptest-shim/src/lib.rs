//! Offline stand-in for the subset of the `proptest 1.x` API that
//! `tests/property_invariants.rs` uses.
//!
//! The build environment has no access to crates.io, so the real `proptest` crate
//! cannot be resolved.  The property tests only need *deterministic, seeded* random
//! generation with the familiar combinator surface — [`strategy::Strategy`] with
//! `prop_map`, range and tuple strategies, [`collection::vec`], [`arbitrary::any`],
//! the [`proptest!`] macro with `#![proptest_config(...)]`, and the `prop_assert*`
//! macros — so this shim implements exactly that on top of the in-tree `rand` shim.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.**  A failing case reports its seed and case number; re-running is
//!   deterministic (the RNG is seeded from the test name and case index), but the
//!   counterexample is not minimized.
//! * `prop_assert_eq!` reports the failing *expressions*, not the values, so it does
//!   not require `Debug` on the compared types.
//!
//! If the workspace ever builds online again, deleting this crate and pointing the
//! `proptest` workspace dependency at crates.io restores the real thing (generated
//! streams differ, so seeded cases will change once).

#![warn(missing_docs)]

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::StdRng;
    use rand::RngCore;
    use std::ops::Range;

    /// A generator of test values — the shim's counterpart of `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Map the generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "strategy range must be non-empty");
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! [`Arbitrary`] values and the [`any`] entry point.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngCore;

    /// Types with a canonical strategy — the (tiny) shim counterpart of
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;

        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `bool`: a fair coin.
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;

        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    /// The canonical strategy of a type: `any::<bool>()` et al.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngCore;
    use std::ops::Range;

    /// Strategy for `Vec`s of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.end > size.start,
            "vec strategy range must be non-empty"
        );
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The failure type, result alias and per-test configuration.

    /// A property failure (carried by `prop_assert!` early returns).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// What a property body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-`proptest!`-block configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub fn __seed_for(test_name: &str, case: u32) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    h.finish()
}

#[doc(hidden)]
pub fn __rng(seed: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed)
}

/// Fail the property unless `cond` holds (early-returns a [`test_runner::TestCaseError`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the property unless the two expressions compare equal.  Unlike upstream, the
/// message quotes the expressions instead of the values, so `Debug` is not required.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}",
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fail the property if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}",
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// The `proptest!` block: an optional `#![proptest_config(...)]` inner attribute
/// followed by `#[test] fn name(pattern in strategy) { body }` items.  Each property
/// runs `config.cases` seeded cases; a failing case panics with the case number and
/// seed (deterministic re-runs, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[test] fn $name:ident($pat:pat in $strat:expr) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strat = $strat;
                for case in 0..config.cases {
                    let seed = $crate::__seed_for(stringify!($name), case);
                    let mut rng = $crate::__rng(seed);
                    let value = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let outcome = {
                        let $pat = value;
                        (move || -> $crate::test_runner::TestCaseResult {
                            $body
                            ::core::result::Result::Ok(())
                        })()
                    };
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case} (seed {seed:#x}): {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let strat = (0..100i64, crate::collection::vec(0..10u8, 1..4));
        let mut a = crate::__rng(7);
        let mut b = crate::__rng(7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected((x, y) in (0..7i64, 3..9usize)) {
            prop_assert!((0..7).contains(&x));
            prop_assert!((3..9).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply_their_function(n in (0..5u32).prop_map(|v| v * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 11);
        }

        #[test]
        fn vectors_resolve_length_and_elements(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }
    }
}
