//! # `pw-reductions` — the paper's hardness reductions, theorem by theorem
//!
//! Every lower bound in the paper is proved by a polynomial-time reduction from a classic
//! complete problem (graph 3-colourability, 3CNF satisfiability, 3DNF tautology, ∀∃3CNF) to
//! one of the decision problems on incomplete databases.  This crate implements those
//! constructions as executable functions:
//!
//! | module | paper result | source problem → target problem |
//! |---|---|---|
//! | [`membership_hardness`] | Thm 3.1(2,3,4) | 3-colourability → `MEMB` on e-tables / i-tables / views of tables |
//! | [`uniqueness_hardness`] | Thm 3.2(3,4) | 3DNF tautology → `UNIQ` on c-tables; non-3-colourability → `UNIQ` of a view |
//! | [`containment_hardness`] | Thm 4.2(1,4) | ∀∃3CNF → `CONT`(table ⊆ i-table); 3DNF tautology → `CONT`(view ⊆ table) |
//! | [`containment_views`] | Thm 4.2(2,3,5) | ∀∃3CNF → `CONT`(table ⊆ view), `CONT`(c-table ⊆ e-table), `CONT`(view ⊆ e-table) |
//! | [`possibility_hardness`] | Thm 5.1(2,3), 5.2(2,3) | 3CNF-SAT → `POSS` on e-/i-tables; 3DNF non-tautology → `POSS(1, FO)`; 3CNF-SAT → `POSS(1, DATALOG)` |
//! | [`certainty_hardness`] | Thm 5.3(2) | 3DNF tautology → `CERT(1, FO)` on a table |
//!
//! The constructions serve two purposes in this reproduction: (1) their unit tests verify
//! the *iff* property of every reduction against the ground-truth solvers of `pw-solvers`
//! on exhaustive small inputs (this is how we check our decision procedures and the
//! reductions against each other), and (2) the benchmark harness uses them to generate the
//! *hard* workload families on which the NP / coNP / Π₂ᵖ cells of Fig. 2 exhibit their
//! exponential growth.
//!
//! Where the journal scan garbles a formula (the ψ of Theorem 5.2(2)), the reconstruction
//! is documented on the item and validated by the same iff tests.

#![warn(missing_docs)]

pub mod certainty_hardness;
pub mod containment_hardness;
pub mod containment_views;
pub mod membership_hardness;
pub mod possibility_hardness;
pub mod uniqueness_hardness;

use pw_core::View;
use pw_relational::Instance;

/// A constructed instance of the membership problem `MEMB(q)`.
#[derive(Clone, Debug)]
pub struct MembershipInstance {
    /// The view (query + c-table database).
    pub view: View,
    /// The candidate world I₀.
    pub instance: Instance,
}

/// A constructed instance of the uniqueness problem `UNIQ(q₀)`.
#[derive(Clone, Debug)]
pub struct UniquenessInstance {
    /// The view (query + c-table database).
    pub view: View,
    /// The candidate unique world I.
    pub instance: Instance,
}

/// A constructed instance of the containment problem `CONT(q₀, q)`.
#[derive(Clone, Debug)]
pub struct ContainmentInstance {
    /// The left view (the candidate subset).
    pub left: View,
    /// The right view (the candidate superset).
    pub right: View,
}

/// A constructed instance of the possibility problem `POSS(k, q)` / `POSS(*, q)`.
#[derive(Clone, Debug)]
pub struct PossibilityInstance {
    /// The view.
    pub view: View,
    /// The fact set P.
    pub facts: Instance,
}

/// A constructed instance of the certainty problem `CERT(k, q)` / `CERT(*, q)`.
#[derive(Clone, Debug)]
pub struct CertaintyInstance {
    /// The view.
    pub view: View,
    /// The fact set P.
    pub facts: Instance,
}
