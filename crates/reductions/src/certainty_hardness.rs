//! Theorem 5.3(2): 3DNF tautology reduces to `CERT(1, q)` for a fixed first order query on
//! a Codd-table.
//!
//! The construction reuses the table and the formula ψ of Theorem 5.2(2) (see
//! [`crate::possibility_hardness`]): with `q′ = {1 | ψ}`, the fact `(1)` is *certain* iff
//! every valuation of the literal-value nulls either fails to encode a truth assignment or
//! encodes one that satisfies the DNF — i.e. iff the DNF is a tautology.

use crate::possibility_hardness::{theorem_52_2_psi, theorem_52_2_table};
use crate::CertaintyInstance;
use pw_core::View;
use pw_query::{FoQuery, Query, QueryDef};
use pw_relational::{rel, Instance};
use pw_solvers::DnfFormula;

/// Theorem 5.3(2): 3DNF tautology → `CERT(1, q′)` on a Codd-table, with `q′ = {1 | ψ}`.
pub fn taut_cert_fo(formula: &DnfFormula) -> CertaintyInstance {
    let query = Query::single("Q", QueryDef::Fo(FoQuery::boolean(1, theorem_52_2_psi())));
    CertaintyInstance {
        view: View::new(query, theorem_52_2_table(formula)),
        facts: Instance::single("Q", rel![[1]]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_decide::{certainty, possibility, Budget};
    use pw_solvers::{Clause, Literal};

    fn lit(v: usize, s: bool) -> Literal {
        Literal {
            var: v,
            positive: s,
        }
    }

    fn budget() -> Budget {
        Budget(20_000_000)
    }

    fn small_dnf_formulas() -> Vec<(DnfFormula, &'static str)> {
        vec![
            (
                DnfFormula::new(
                    1,
                    [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
                ),
                "x ∨ ¬x — tautology",
            ),
            (
                DnfFormula::new(2, [Clause::new([lit(0, true), lit(1, false)])]),
                "x ∧ ¬y — not a tautology",
            ),
            (
                DnfFormula::new(
                    2,
                    [
                        Clause::new([lit(0, true)]),
                        Clause::new([lit(0, false)]),
                        Clause::new([lit(1, true)]),
                    ],
                ),
                "x ∨ ¬x ∨ y — tautology",
            ),
        ]
    }

    #[test]
    fn certainty_reduction_matches_the_tautology_solver() {
        for (formula, label) in small_dnf_formulas() {
            let expected = formula.is_tautology();
            let reduction = taut_cert_fo(&formula);
            let answer = certainty::decide(&reduction.view, &reduction.facts, budget()).unwrap();
            assert_eq!(answer, expected, "CERT(1, FO) reduction on {label}");
        }
    }

    #[test]
    fn certainty_and_possibility_duality_on_the_same_table() {
        // CERT(1, {1 | ψ}) answers "tautology"; POSS(1, {1 | ¬ψ}) answers "non-tautology";
        // on any formula exactly one of them is true.
        use crate::possibility_hardness::nontaut_poss_fo;
        for (formula, label) in small_dnf_formulas() {
            let cert = taut_cert_fo(&formula);
            let poss = nontaut_poss_fo(&formula);
            let certain = certainty::decide(&cert.view, &cert.facts, budget()).unwrap();
            let possible = possibility::decide(&poss.view, &poss.facts, budget()).unwrap();
            assert_ne!(certain, possible, "duality on {label}");
        }
    }

    #[test]
    fn construction_shares_the_theorem_52_table() {
        let formula = DnfFormula::paper_fig5();
        let reduction = taut_cert_fo(&formula);
        let table = reduction.view.db.table("R").unwrap();
        assert_eq!(table.len(), 15, "one row per literal occurrence");
        assert_eq!(table.variables().len(), 15);
        assert_eq!(
            reduction.view.query.class(),
            pw_query::QueryClass::FirstOrder
        );
    }
}
