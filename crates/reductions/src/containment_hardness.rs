//! Theorem 4.2(1,4): the containment lower bounds.
//!
//! * [`ae3cnf_cont_itable`] — ∀∃3CNF reduces to `CONT(-, -)` with a Codd-table on the left
//!   and an i-table on the right (Theorem 4.2(1), the Fig. 7 construction) — the
//!   Π₂ᵖ-complete cell of Fig. 2 reached with "a very small amount of expressibility".
//! * [`dnf_taut_cont_view_table`] — 3DNF tautology reduces to `CONT(q₀, -)` with a positive
//!   existential view of Codd-tables on the left and a Codd-table on the right
//!   (Theorem 4.2(4), the Fig. 9 construction).

use crate::ContainmentInstance;
use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, View};
use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};
use pw_solvers::qbf::ForallExists3Cnf;
use pw_solvers::{DnfFormula, Literal};

/// The 0/1 triples with at least one 1 — shared by both tables of the Fig. 7 construction
/// (they encode "the clause has a satisfied literal").
fn nonzero_bool_triples() -> Vec<(i64, i64, i64)> {
    let mut out = Vec::new();
    for a in 0..=1i64 {
        for b in 0..=1i64 {
            for c in 0..=1i64 {
                if a + b + c != 0 {
                    out.push((a, b, c));
                }
            }
        }
    }
    out
}

/// Theorem 4.2(1): ∀∃3CNF → `CONT(-, -)` with a Codd-table 𝒯₀ ⊆ an i-table (𝒯, φ_T), both
/// of arity 4 (the construction of Fig. 7).
///
/// Left-hand side (one world per assignment of the universal variables): for each
/// universal variable `xᵢ` the rows `(0, zᵢ, i, i)` and `(1, 0, i, i)` — the value of the
/// null `zᵢ` encodes `xᵢ` (5 = true, 6 = false, anything else = unconstrained) — plus the
/// fixed block of non-zero boolean triples tagged 0.
///
/// Right-hand side: rows `(uᵢ, wᵢ, i, i)` and `(vᵢ, yᵢ, i, i)` that must reproduce the two
/// facts of index `i` (the inequalities `wᵢ ≠ 5`, `yᵢ ≠ 6` force `uᵢ` to be the truth value
/// of `xᵢ` and `vᵢ` its complement), the same fixed block, and one row
/// `(r_{k,1}, r_{k,2}, r_{k,3}, 0)` per clause whose image must be a non-zero triple — the
/// clause's literal values — with inequalities tying the `r_{k,j}` to the variables' truth
/// values (`r ≠ vₗ` for a positive literal of `xₗ`, `r ≠ uₗ` for a negative one, and
/// `r ≠ r'` for complementary occurrences).
pub fn ae3cnf_cont_itable(instance: &ForallExists3Cnf) -> ContainmentInstance {
    let n = instance.universal_vars;
    let total = instance.num_vars();
    let mut vars = VarGen::new();

    // ---- Left: the Codd-table 𝒯₀. ----
    let z: Vec<Variable> = (0..n).map(|i| vars.named(format!("z{i}"))).collect();
    let mut left_rows: Vec<Vec<Term>> = Vec::new();
    for (i, &zi) in z.iter().enumerate() {
        let idx = Term::constant(i as i64 + 10); // indices 10, 11, … keep clear of 0/1/5/6
        left_rows.push(vec![Term::constant(0), Term::Var(zi), idx, idx]);
        left_rows.push(vec![Term::constant(1), Term::constant(0), idx, idx]);
    }
    for (a, b, c) in nonzero_bool_triples() {
        left_rows.push(vec![
            Term::constant(a),
            Term::constant(b),
            Term::constant(c),
            Term::constant(0),
        ]);
    }
    let left_table = CTable::codd("T", 4, left_rows).expect("left rows use distinct nulls");

    // ---- Right: the i-table (𝒯, φ_T). ----
    // u_l / v_l exist for every variable (universal and existential); w_i / y_i only for
    // universal ones (they appear in the table rows).
    let u: Vec<Variable> = (0..total).map(|l| vars.named(format!("u{l}"))).collect();
    let v: Vec<Variable> = (0..total).map(|l| vars.named(format!("v{l}"))).collect();
    let w: Vec<Variable> = (0..n).map(|i| vars.named(format!("w{i}"))).collect();
    let y: Vec<Variable> = (0..n).map(|i| vars.named(format!("y{i}"))).collect();
    let r: Vec<Vec<Variable>> = (0..instance.clauses.len())
        .map(|k| {
            (0..3)
                .map(|j| vars.named(format!("r{k}_{j}")))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut right_rows: Vec<Vec<Term>> = Vec::new();
    for i in 0..n {
        let idx = Term::constant(i as i64 + 10);
        right_rows.push(vec![Term::Var(u[i]), Term::Var(w[i]), idx, idx]);
        right_rows.push(vec![Term::Var(v[i]), Term::Var(y[i]), idx, idx]);
    }
    for (a, b, c) in nonzero_bool_triples() {
        right_rows.push(vec![
            Term::constant(a),
            Term::constant(b),
            Term::constant(c),
            Term::constant(0),
        ]);
    }
    for (k, _clause) in instance.clauses.iter().enumerate() {
        right_rows.push(vec![
            Term::Var(r[k][0]),
            Term::Var(r[k][1]),
            Term::Var(r[k][2]),
            Term::constant(0),
        ]);
    }

    let mut condition = Conjunction::truth();
    for i in 0..n {
        condition.push(Atom::neq(w[i], 5));
        condition.push(Atom::neq(y[i], 6));
    }
    // Complementary literal occurrences must take different values.
    let literal_at = |k: usize, j: usize| -> Literal { instance.clauses[k].literals()[j] };
    for k in 0..instance.clauses.len() {
        for j in 0..3 {
            for k2 in 0..instance.clauses.len() {
                for j2 in 0..3 {
                    let (l1, l2) = (literal_at(k, j), literal_at(k2, j2));
                    if l1.var == l2.var && l1.positive && !l2.positive {
                        condition.push(Atom::neq(r[k][j], r[k2][j2]));
                    }
                }
            }
        }
    }
    // Tie literal values to the variable encoding.
    for (k, rk) in r.iter().enumerate().take(instance.clauses.len()) {
        for (j, &rkj) in rk.iter().enumerate() {
            let lit = literal_at(k, j);
            if lit.positive {
                condition.push(Atom::neq(rkj, v[lit.var]));
            } else {
                condition.push(Atom::neq(rkj, u[lit.var]));
            }
        }
    }

    let right_table =
        CTable::i_table("T", 4, condition, right_rows).expect("right-hand side is an i-table");

    ContainmentInstance {
        left: View::identity(CDatabase::single(left_table)),
        right: View::identity(CDatabase::single(right_table)),
    }
}

/// Theorem 4.2(4): 3DNF tautology → `CONT(q₀, -)` with a positive existential view of
/// Codd-tables on the left and a Codd-table on the right (the Fig. 9 construction).
///
/// Left database: `R₀` lists `(i, j, 1)` when `xⱼ` occurs in clause `i` and `(i, j, 0)`
/// when `¬xⱼ` does; `S₀` holds one row `(j, uⱼ)` per variable with `uⱼ` a null encoding
/// "xⱼ is false" as `uⱼ = 1`.  The query outputs the clauses containing a falsified
/// literal, plus the constant 0.  The right-hand side is a Codd-table with `p` nulls —
/// it represents every unary relation of at most `p` elements — so containment holds iff
/// no assignment falsifies all `p` clauses, i.e. iff `H` is a tautology.
pub fn dnf_taut_cont_view_table(formula: &DnfFormula) -> ContainmentInstance {
    let p = formula.clauses.len();
    let mut vars = VarGen::new();
    let u: Vec<Variable> = (0..formula.num_vars)
        .map(|j| vars.named(format!("u{j}")))
        .collect();

    // R0: ground incidence table (clause, variable, sign).
    let mut r0_rows: Vec<Vec<Term>> = Vec::new();
    for (i, clause) in formula.clauses.iter().enumerate() {
        for lit in clause.literals() {
            r0_rows.push(vec![
                Term::constant(i as i64 + 1),
                Term::constant(lit.var as i64 + 100),
                Term::constant(i64::from(lit.positive)),
            ]);
        }
    }
    let r0 = CTable::codd("R0", 3, r0_rows).expect("R0 is ground");

    // S0: one row per variable with its unknown "falsity" bit.
    let s0_rows: Vec<Vec<Term>> = (0..formula.num_vars)
        .map(|j| vec![Term::constant(j as i64 + 100), Term::Var(u[j])])
        .collect();
    let s0 = CTable::codd("S0", 2, s0_rows).expect("S0 uses distinct nulls");

    // q0(x) = ∃ y z (R0(x, y, z) ∧ S0(y, z))  ∪  {0}.
    let falsified = ConjunctiveQuery::new(
        [QTerm::var("x")],
        [qatom!("R0"; "x", "y", "z"), qatom!("S0"; "y", "z")],
    );
    let zero = ConjunctiveQuery::new([QTerm::constant(0)], []);
    let q0 = Ucq::new([falsified, zero]).expect("q0 is well formed");
    let left = View::new(
        Query::single("Q", QueryDef::Ucq(q0)),
        CDatabase::new([r0, s0]),
    );

    // Right: a Codd-table with p distinct nulls — all unary relations of size ≤ p.
    let z: Vec<Variable> = (0..p).map(|k| vars.named(format!("z{k}"))).collect();
    let right_rows: Vec<Vec<Term>> = z.iter().map(|&zk| vec![Term::Var(zk)]).collect();
    let right_table = CTable::codd("Q", 1, right_rows).expect("right table is a Codd-table");
    let right = View::identity(CDatabase::single(right_table));

    ContainmentInstance { left, right }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_decide::{containment, Budget};
    use pw_solvers::qbf::decide_forall_exists;
    use pw_solvers::{Clause, Literal};

    fn lit(v: usize, s: bool) -> Literal {
        Literal {
            var: v,
            positive: s,
        }
    }

    fn budget() -> Budget {
        Budget(20_000_000)
    }

    fn small_qbf_instances() -> Vec<(ForallExists3Cnf, &'static str)> {
        vec![
            (
                ForallExists3Cnf::new(
                    1,
                    1,
                    [
                        Clause::new([lit(0, true), lit(1, false), lit(1, false)]),
                        Clause::new([lit(0, false), lit(1, true), lit(1, true)]),
                    ],
                ),
                "∀x ∃y (x ∨ ¬y)(¬x ∨ y) — true",
            ),
            (
                ForallExists3Cnf::new(
                    1,
                    1,
                    [Clause::new([lit(0, true), lit(0, true), lit(0, true)])],
                ),
                "∀x ∃y (x) — false",
            ),
            (
                ForallExists3Cnf::new(
                    2,
                    1,
                    [
                        Clause::new([lit(0, true), lit(1, true), lit(2, true)]),
                        Clause::new([lit(0, false), lit(1, false), lit(2, false)]),
                    ],
                ),
                "∀x1 x2 ∃y (x1∨x2∨y)(¬x1∨¬x2∨¬y) — true",
            ),
        ]
    }

    #[test]
    fn ae3cnf_reduction_matches_the_qbf_solver() {
        for (instance, label) in small_qbf_instances() {
            let expected = decide_forall_exists(&instance);
            let reduction = ae3cnf_cont_itable(&instance);
            let answer = containment::decide(&reduction.left, &reduction.right, budget()).unwrap();
            assert_eq!(answer, expected, "CONT reduction on {label}");
        }
    }

    #[test]
    fn fig7_construction_shape() {
        let instance = ForallExists3Cnf::paper_fig5();
        let reduction = ae3cnf_cont_itable(&instance);
        let left = reduction.left.db.table("T").unwrap();
        let right = reduction.right.db.table("T").unwrap();
        // Left: 2 rows per universal variable + 7 boolean triples.
        assert_eq!(left.len(), 2 * 2 + 7);
        assert_eq!(left.classify(), pw_core::TableClass::Codd);
        // Right: 2 rows per universal variable + 7 triples + one row per clause.
        assert_eq!(right.len(), 2 * 2 + 7 + 5);
        assert_eq!(right.classify(), pw_core::TableClass::ITable);
        // The condition contains w/y constraints and one inequality per literal occurrence.
        assert!(right.global_condition().len() >= 2 * 2 + 15);
    }

    #[test]
    fn dnf_taut_containment_reduction_matches_the_solver() {
        let cases = vec![
            (
                DnfFormula::new(
                    1,
                    [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
                ),
                "x ∨ ¬x — tautology",
            ),
            (
                DnfFormula::new(2, [Clause::new([lit(0, true), lit(1, true)])]),
                "x ∧ y — not a tautology",
            ),
            (
                DnfFormula::new(
                    2,
                    [
                        Clause::new([lit(0, true), lit(1, true)]),
                        Clause::new([lit(0, false)]),
                        Clause::new([lit(1, false)]),
                    ],
                ),
                "(x∧y) ∨ ¬x ∨ ¬y — tautology",
            ),
        ];
        for (formula, label) in cases {
            let expected = formula.is_tautology();
            let reduction = dnf_taut_cont_view_table(&formula);
            let answer = containment::decide(&reduction.left, &reduction.right, budget()).unwrap();
            assert_eq!(answer, expected, "CONT(q0, -) reduction on {label}");
        }
    }

    #[test]
    fn fig9_construction_shape() {
        let formula = DnfFormula::paper_fig5();
        let reduction = dnf_taut_cont_view_table(&formula);
        assert_eq!(reduction.left.db.table("R0").unwrap().len(), 15);
        assert_eq!(reduction.left.db.table("S0").unwrap().len(), 5);
        assert_eq!(reduction.right.db.table("Q").unwrap().len(), 5);
        assert!(reduction.left.query.class() <= pw_query::QueryClass::PositiveExistential);
    }
}
