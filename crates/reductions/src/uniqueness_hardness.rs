//! Theorem 3.2(3,4): 3DNF tautology reduces to `UNIQ(-)` on c-tables, and graph
//! non-3-colourability reduces to `UNIQ(q₀)` for a positive existential query with ≠ on a
//! Codd-table.

use crate::UniquenessInstance;
use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, CTuple, View};
use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};
use pw_relational::{rel, Instance};
use pw_solvers::{DnfFormula, Graph};

/// Theorem 3.2(3): 3DNF tautology → `UNIQ(-)` on a single c-table.
///
/// For each DNF clause `cᵢ = ℓ₁ ∧ ℓ₂ ∧ ℓ₃` the c-table has a unary row `(1)` with local
/// condition `δ₁ ∧ δ₂ ∧ δ₃`, where `δₖ` is `uⱼ = 1` for the literal `xⱼ` and `uⱼ ≠ 1` for
/// `¬xⱼ`.  A valuation of the `uⱼ` encodes a truth assignment, and the produced world is
/// `{(1)}` exactly when some clause is satisfied; the world `{(1)}` is the *unique* world
/// iff every assignment satisfies some clause, i.e. iff `H` is a tautology.
pub fn dnf_taut_uniq_ctable(formula: &DnfFormula) -> UniquenessInstance {
    let mut vars = VarGen::new();
    let u: Vec<Variable> = (0..formula.num_vars)
        .map(|j| vars.named(format!("u{j}")))
        .collect();

    let rows: Vec<CTuple> = formula
        .clauses
        .iter()
        .map(|clause| {
            let condition = Conjunction::new(clause.literals().iter().map(|lit| {
                if lit.positive {
                    Atom::eq(u[lit.var], 1)
                } else {
                    Atom::neq(u[lit.var], 1)
                }
            }));
            CTuple::with_condition([Term::constant(1)], condition)
        })
        .collect();

    let table = CTable::new("T", 1, Conjunction::truth(), rows).expect("unary rows");
    UniquenessInstance {
        view: View::identity(CDatabase::single(table)),
        instance: Instance::single("T", rel![[1]]),
    }
}

/// Theorem 3.2(4): graph non-3-colourability → `UNIQ(q₀)` for a positive existential query
/// with ≠ applied to a Codd-table (the construction of Fig. 6).
///
/// The table holds one row `(1, a, b)` per edge and one row `(0, a, x_a)` per vertex — the
/// third column of a `0`-row is the vertex's unknown colour.  The query outputs `(1)` when
/// either some edge is monochromatic or some vertex has a non-colour value; `{(1)}` is the
/// unique world of the view iff *no* valuation avoids both, i.e. iff the graph is not
/// 3-colourable.
pub fn non3col_uniq_view(graph: &Graph) -> UniquenessInstance {
    let mut vars = VarGen::new();
    let x: Vec<Variable> = (0..graph.vertex_count())
        .map(|v| vars.named(format!("x{v}")))
        .collect();

    // Vertices are encoded as 10 + v to keep them distinct from the colours 1, 2, 3 and
    // from the tags 0/1 (the paper overlaps these namespaces in its small example; the
    // argument is unchanged).
    let vertex = |v: usize| Term::constant(10 + v as i64);

    let mut rows: Vec<Vec<Term>> = graph
        .edges()
        .map(|(a, b)| vec![Term::constant(1), vertex(a), vertex(b)])
        .collect();
    rows.extend(
        (0..graph.vertex_count()).map(|a| vec![Term::constant(0), vertex(a), Term::Var(x[a])]),
    );
    let table = CTable::codd("R", 3, rows).expect("each colour variable occurs once");

    // q₀ = {1 | ∃xyz[R(1xy) ∧ R(0xz) ∧ R(0yz)]  ∨  ∃yz[R(0yz) ∧ z≠1 ∧ z≠2 ∧ z≠3]}
    let monochromatic_edge = ConjunctiveQuery::new(
        [QTerm::constant(1)],
        [
            qatom!("R"; 1, "x", "y"),
            qatom!("R"; 0, "x", "z"),
            qatom!("R"; 0, "y", "z"),
        ],
    );
    let non_color_value = ConjunctiveQuery::new([QTerm::constant(1)], [qatom!("R"; 0, "y", "z")])
        .with_neq("z", 1)
        .with_neq("z", 2)
        .with_neq("z", 3);
    let q0 = Ucq::new([monochromatic_edge, non_color_value]).expect("q0 is well formed");

    UniquenessInstance {
        view: View::new(
            Query::single("Q", QueryDef::Ucq(q0)),
            CDatabase::single(table),
        ),
        instance: Instance::single("Q", rel![[1]]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership_hardness::small_test_graphs;
    use pw_decide::{uniqueness, Budget};
    use pw_solvers::coloring::is_three_colorable;
    use pw_solvers::{Clause, Literal};

    fn budget() -> Budget {
        Budget(10_000_000)
    }

    fn small_dnf_formulas() -> Vec<(DnfFormula, &'static str)> {
        let lit = |v: usize, s: bool| Literal {
            var: v,
            positive: s,
        };
        vec![
            (
                DnfFormula::new(
                    1,
                    [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
                ),
                "x ∨ ¬x (tautology)",
            ),
            (
                DnfFormula::new(2, [Clause::new([lit(0, true), lit(1, true)])]),
                "x ∧ y (not a tautology)",
            ),
            (
                DnfFormula::new(
                    2,
                    [
                        Clause::new([lit(0, true), lit(1, true)]),
                        Clause::new([lit(0, false)]),
                        Clause::new([lit(1, false)]),
                    ],
                ),
                "(x∧y) ∨ ¬x ∨ ¬y (tautology)",
            ),
            (DnfFormula::paper_fig5(), "the paper's Fig. 5 DNF"),
        ]
    }

    #[test]
    fn dnf_tautology_reduction_matches_the_solver() {
        for (formula, label) in small_dnf_formulas() {
            let expected = formula.is_tautology();
            let reduction = dnf_taut_uniq_ctable(&formula);
            let answer =
                uniqueness::decide(&reduction.view, &reduction.instance, budget()).unwrap();
            assert_eq!(answer, expected, "UNIQ reduction on {label}");
        }
    }

    #[test]
    fn dnf_reduction_produces_one_row_per_clause() {
        let formula = DnfFormula::paper_fig5();
        let reduction = dnf_taut_uniq_ctable(&formula);
        let table = reduction.view.db.table("T").unwrap();
        assert_eq!(table.len(), formula.clauses.len());
        assert!(table.has_local_conditions());
        assert_eq!(table.variables().len(), formula.num_vars);
    }

    #[test]
    fn non_three_colorability_reduction_matches_the_solver() {
        for (graph, label) in small_test_graphs() {
            if graph.vertex_count() > 5 {
                continue; // keep the coNP search small in unit tests
            }
            let expected = !is_three_colorable(&graph);
            let reduction = non3col_uniq_view(&graph);
            let answer =
                uniqueness::decide(&reduction.view, &reduction.instance, budget()).unwrap();
            assert_eq!(answer, expected, "UNIQ(q0) reduction on {label}");
        }
    }

    #[test]
    fn fig6_construction_shape() {
        // Fig. 6: the table for the Fig. 4(a) graph has one row per edge plus one per
        // vertex.
        let g = Graph::paper_fig4a();
        let reduction = non3col_uniq_view(&g);
        let table = reduction.view.db.table("R").unwrap();
        assert_eq!(table.len(), g.edge_count() + g.vertex_count());
        assert_eq!(table.variables().len(), g.vertex_count());
        assert_eq!(
            reduction.view.query.class(),
            pw_query::QueryClass::PositiveExistentialNeq
        );
    }
}
