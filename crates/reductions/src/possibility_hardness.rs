//! Theorems 5.1(2,3) and 5.2(2,3): the possibility lower bounds.
//!
//! * [`sat_poss_etable`] / [`sat_poss_itable`] — 3CNF satisfiability reduces to unbounded
//!   possibility on a single e-table / i-table (Fig. 11(b) / Fig. 11(a)).
//! * [`nontaut_poss_fo`] — 3DNF non-tautology reduces to `POSS(1, q)` for a fixed first
//!   order query on a Codd-table (Theorem 5.2(2)).
//! * [`sat_poss_datalog`] — 3CNF satisfiability reduces to `POSS(1, q)` for a fixed DATALOG
//!   query on Codd-tables (Theorem 5.2(3), the Fig. 12 gadget graph).

use crate::PossibilityInstance;
use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, View};
use pw_query::{DatalogProgram, DlAtom, DlRule, FoQuery, Formula, QTerm, Query, QueryDef};
use pw_relational::{rel, Constant, Instance, Relation, Tuple};
use pw_solvers::{CnfFormula, DnfFormula};

/// Theorem 5.1(2): 3CNF satisfiability → `POSS(*, -)` on a single e-table (Fig. 11(b)).
///
/// For each variable `xⱼ` the e-table holds the rows `(j, uⱼ, yⱼ)` and `(j, yⱼ, uⱼ)`, and
/// for each clause `cᵢ` one row `(m+i, m+i, uⱼ)` per positive literal `xⱼ` and
/// `(m+i, m+i, yⱼ)` per negative literal.  The fact set asks for `(j, 0, 1)`, `(j, 1, 0)`
/// (forcing `{uⱼ, yⱼ} = {0, 1}`) and `(m+i, m+i, 1)` (forcing a true literal per clause).
pub fn sat_poss_etable(formula: &CnfFormula) -> PossibilityInstance {
    let m = formula.num_vars;
    let mut vars = VarGen::new();
    let u: Vec<Variable> = (0..m).map(|j| vars.named(format!("u{j}"))).collect();
    let y: Vec<Variable> = (0..m).map(|j| vars.named(format!("y{j}"))).collect();

    let mut rows: Vec<Vec<Term>> = Vec::new();
    for j in 0..m {
        let idx = Term::constant(j as i64 + 1);
        rows.push(vec![idx, Term::Var(u[j]), Term::Var(y[j])]);
        rows.push(vec![idx, Term::Var(y[j]), Term::Var(u[j])]);
    }
    for (i, clause) in formula.clauses.iter().enumerate() {
        let idx = Term::constant((m + i) as i64 + 1);
        for lit in clause.literals() {
            let value = if lit.positive { u[lit.var] } else { y[lit.var] };
            rows.push(vec![idx, idx, Term::Var(value)]);
        }
    }
    let table = CTable::e_table("T", 3, rows).expect("e-table construction");

    let mut facts = Relation::empty(3);
    for j in 0..m {
        let idx: Constant = (j as i64 + 1).into();
        facts
            .insert(Tuple::new([idx.clone(), 0.into(), 1.into()]))
            .unwrap();
        facts.insert(Tuple::new([idx, 1.into(), 0.into()])).unwrap();
    }
    for i in 0..formula.clauses.len() {
        let idx: Constant = ((m + i) as i64 + 1).into();
        facts
            .insert(Tuple::new([idx.clone(), idx, 1.into()]))
            .unwrap();
    }

    PossibilityInstance {
        view: View::identity(CDatabase::single(table)),
        facts: Instance::single("T", facts),
    }
}

/// Theorem 5.1(3): 3CNF satisfiability → `POSS(*, -)` on a single i-table (Fig. 11(a)).
///
/// One variable `x_{i,k}` per literal occurrence; the global condition separates
/// complementary occurrences; the fact set asks every clause to have an occurrence with
/// value 1.
pub fn sat_poss_itable(formula: &CnfFormula) -> PossibilityInstance {
    let mut vars = VarGen::new();
    let occ: Vec<Vec<Variable>> = formula
        .clauses
        .iter()
        .enumerate()
        .map(|(i, clause)| {
            (0..clause.len())
                .map(|k| vars.named(format!("x{i}_{k}")))
                .collect()
        })
        .collect();

    let mut rows: Vec<Vec<Term>> = Vec::new();
    for (i, clause) in formula.clauses.iter().enumerate() {
        for &occ_var in occ[i].iter().take(clause.len()) {
            rows.push(vec![Term::constant(i as i64 + 1), Term::Var(occ_var)]);
        }
    }
    let mut condition = Conjunction::truth();
    for (i, ci) in formula.clauses.iter().enumerate() {
        for (k, li) in ci.literals().iter().enumerate() {
            for (j, cj) in formula.clauses.iter().enumerate() {
                for (l, lj) in cj.literals().iter().enumerate() {
                    if li.var == lj.var && li.positive && !lj.positive {
                        condition.push(Atom::neq(occ[i][k], occ[j][l]));
                    }
                }
            }
        }
    }
    let table = CTable::i_table("T", 2, condition, rows).expect("i-table construction");

    let facts = Relation::from_tuples(
        2,
        (0..formula.clauses.len()).map(|i| Tuple::new([(i as i64 + 1).into(), 1.into()])),
    );

    PossibilityInstance {
        view: View::identity(CDatabase::single(table)),
        facts: Instance::single("T", facts),
    }
}

/// The formula ψ of Theorem 5.2(2), reconstructed.
///
/// The table `T` of [`nontaut_poss_fo`] has one row `(i, z_{i,k}, j, s)` per literal
/// occurrence: clause `i`, the unknown truth value `z_{i,k}` of the occurrence, the
/// variable index `j`, and the sign `s` (1 for `xⱼ`, 0 for `¬xⱼ`).  ψ states that either
/// the valuation of the `z` nulls does not encode a truth assignment, or the encoded
/// assignment satisfies the DNF:
///
/// * some occurrence value is neither 0 nor 1, or
/// * two occurrences of the same variable with the same sign get different values, or
/// * two occurrences of the same variable with different signs get the same value, or
/// * some clause has all its occurrences set to 1.
///
/// (The journal scan garbles the exact formula; this reconstruction satisfies the stated
/// property — "ψ states that either σ(T) does not represent a truth assignment, or that
/// truth assignment is satisfied by H" — and the iff tests below validate it.)
pub fn theorem_52_2_psi() -> Formula {
    let not_boolean = Formula::exists(
        ["i", "y", "j", "s"],
        Formula::and([
            Formula::atom(
                "R",
                [
                    QTerm::var("i"),
                    QTerm::var("y"),
                    QTerm::var("j"),
                    QTerm::var("s"),
                ],
            ),
            Formula::neq("y", 0),
            Formula::neq("y", 1),
        ]),
    );
    let same_sign_conflict = Formula::exists(
        ["i1", "y1", "i2", "y2", "j", "s"],
        Formula::and([
            Formula::atom(
                "R",
                [
                    QTerm::var("i1"),
                    QTerm::var("y1"),
                    QTerm::var("j"),
                    QTerm::var("s"),
                ],
            ),
            Formula::atom(
                "R",
                [
                    QTerm::var("i2"),
                    QTerm::var("y2"),
                    QTerm::var("j"),
                    QTerm::var("s"),
                ],
            ),
            Formula::neq("y1", "y2"),
        ]),
    );
    let opposite_sign_conflict = Formula::exists(
        ["i1", "y", "i2", "j"],
        Formula::and([
            Formula::atom(
                "R",
                [
                    QTerm::var("i1"),
                    QTerm::var("y"),
                    QTerm::var("j"),
                    QTerm::constant(1),
                ],
            ),
            Formula::atom(
                "R",
                [
                    QTerm::var("i2"),
                    QTerm::var("y"),
                    QTerm::var("j"),
                    QTerm::constant(0),
                ],
            ),
        ]),
    );
    let satisfied_clause = Formula::exists(
        ["i"],
        Formula::and([
            Formula::exists(
                ["y", "j", "s"],
                Formula::atom(
                    "R",
                    [
                        QTerm::var("i"),
                        QTerm::var("y"),
                        QTerm::var("j"),
                        QTerm::var("s"),
                    ],
                ),
            ),
            Formula::forall(
                ["y", "j", "s"],
                Formula::or([
                    Formula::Not(Box::new(Formula::atom(
                        "R",
                        [
                            QTerm::var("i"),
                            QTerm::var("y"),
                            QTerm::var("j"),
                            QTerm::var("s"),
                        ],
                    ))),
                    Formula::Eq(QTerm::var("y"), QTerm::constant(1)),
                ]),
            ),
        ]),
    );
    Formula::or([
        not_boolean,
        same_sign_conflict,
        opposite_sign_conflict,
        satisfied_clause,
    ])
}

/// The table of Theorem 5.2(2)/5.3(2): one row per literal occurrence of the DNF.
pub fn theorem_52_2_table(formula: &DnfFormula) -> CDatabase {
    let mut vars = VarGen::new();
    let mut rows: Vec<Vec<Term>> = Vec::new();
    for (i, clause) in formula.clauses.iter().enumerate() {
        for (k, lit) in clause.literals().iter().enumerate() {
            let z = vars.named(format!("z{i}_{k}"));
            rows.push(vec![
                Term::constant(i as i64 + 1),
                Term::Var(z),
                Term::constant(lit.var as i64 + 100),
                Term::constant(i64::from(lit.positive)),
            ]);
        }
    }
    let table = CTable::codd("R", 4, rows).expect("each z occurs once");
    CDatabase::single(table)
}

/// Theorem 5.2(2): 3DNF non-tautology → `POSS(1, q)` for the first order query
/// `q = {1 | ¬ψ}` on a Codd-table.  The fact `(1)` is possible iff some assignment
/// falsifies every clause, i.e. iff `H` is not a tautology.
pub fn nontaut_poss_fo(formula: &DnfFormula) -> PossibilityInstance {
    let query = Query::single(
        "Q",
        QueryDef::Fo(FoQuery::boolean(
            1,
            Formula::Not(Box::new(theorem_52_2_psi())),
        )),
    );
    PossibilityInstance {
        view: View::new(query, theorem_52_2_table(formula)),
        facts: Instance::single("Q", rel![[1]]),
    }
}

/// Theorem 5.2(3): 3CNF satisfiability → `POSS(1, q)` for a fixed DATALOG query on
/// Codd-tables (the Fig. 12 gadget).
///
/// The Datalog program derives `Q(x)` from `Q(x) :- R0(x)` and
/// `Q(x) :- Q(y), Q(z), R1(y, x), R2(z, x)`.  The gadget graph forces a derivation of the
/// goal node `1` to pick, per CNF variable, either the `tᵢ` or the `fᵢ` node (the value of
/// the single null `xᵢ` per variable) and to traverse every clause node `hⱼ`, which is
/// derivable only when the clause has a true literal.
pub fn sat_poss_datalog(formula: &CnfFormula) -> PossibilityInstance {
    let n = formula.num_vars;
    let m = formula.clauses.len();
    let mut vars = VarGen::new();
    let x: Vec<Variable> = (0..n).map(|i| vars.named(format!("x{i}"))).collect();

    // Node constants.
    let a = Constant::str("a");
    let t = |i: usize| Constant::str(format!("t{i}"));
    let f = |i: usize| Constant::str(format!("f{i}"));
    let anode = |i: usize| Constant::str(format!("a{i}"));
    let b = |i: usize| Constant::str(format!("b{i}"));
    let h = |j: usize| Constant::str(format!("h{j}"));
    let goal = Constant::int(1);

    let r0 = CTable::codd("R0", 1, [vec![Term::from(a.clone())]]).expect("R0");

    let mut r1_rows: Vec<Vec<Term>> = Vec::new();
    let mut r2_rows: Vec<Vec<Term>> = Vec::new();
    let edge = |rows: &mut Vec<Vec<Term>>, from: Term, to: Term| rows.push(vec![from, to]);

    for i in 0..n {
        edge(&mut r1_rows, Term::from(a.clone()), Term::from(t(i)));
        edge(&mut r1_rows, Term::from(a.clone()), Term::from(f(i)));
        edge(&mut r1_rows, Term::from(a.clone()), Term::from(anode(i)));
        edge(&mut r2_rows, Term::from(t(i)), Term::from(anode(i)));
        edge(&mut r2_rows, Term::from(f(i)), Term::from(anode(i)));
        edge(&mut r2_rows, Term::from(anode(i)), Term::from(b(i)));
        if i + 1 < n {
            edge(&mut r1_rows, Term::from(b(i)), Term::from(b(i + 1)));
            edge(&mut r2_rows, Term::from(anode(i)), Term::Var(x[i + 1]));
        }
    }
    edge(&mut r1_rows, Term::from(a.clone()), Term::from(b(0)));
    edge(&mut r2_rows, Term::from(a.clone()), Term::Var(x[0]));
    for (j, clause) in formula.clauses.iter().enumerate() {
        for lit in clause.literals() {
            let source = if lit.positive { t(lit.var) } else { f(lit.var) };
            edge(&mut r1_rows, Term::from(source), Term::from(h(j)));
        }
        if j + 1 < m {
            edge(&mut r2_rows, Term::from(h(j)), Term::from(h(j + 1)));
        }
    }
    edge(&mut r2_rows, Term::from(a.clone()), Term::from(h(0)));
    edge(&mut r1_rows, Term::from(b(n - 1)), Term::from(goal.clone()));
    edge(&mut r2_rows, Term::from(h(m - 1)), Term::from(goal.clone()));

    let r1 = CTable::codd("R1", 2, r1_rows).expect("R1");
    let r2 = CTable::codd("R2", 2, r2_rows).expect("R2");

    let program = DatalogProgram::new(
        [
            DlRule::new(
                DlAtom::new("Q", [QTerm::var("x")]),
                [DlAtom::new("R0", [QTerm::var("x")])],
            ),
            DlRule::new(
                DlAtom::new("Q", [QTerm::var("x")]),
                [
                    DlAtom::new("Q", [QTerm::var("y")]),
                    DlAtom::new("Q", [QTerm::var("z")]),
                    DlAtom::new("R1", [QTerm::var("y"), QTerm::var("x")]),
                    DlAtom::new("R2", [QTerm::var("z"), QTerm::var("x")]),
                ],
            ),
        ],
        "Q",
        1,
    )
    .expect("the fixed Datalog program is well formed");

    PossibilityInstance {
        view: View::new(
            Query::single("Q", QueryDef::Datalog(program)),
            CDatabase::new([r0, r1, r2]),
        ),
        facts: Instance::single("Q", rel![[1]]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_decide::{possibility, Budget};
    use pw_solvers::{paper_fig5_cnf, Clause, Literal};

    fn lit(v: usize, s: bool) -> Literal {
        Literal {
            var: v,
            positive: s,
        }
    }

    fn budget() -> Budget {
        Budget(20_000_000)
    }

    fn small_cnf_formulas() -> Vec<(CnfFormula, &'static str)> {
        vec![
            (
                CnfFormula::new(2, [Clause::new([lit(0, true), lit(1, true)])]),
                "x ∨ y — satisfiable",
            ),
            (
                CnfFormula::new(
                    1,
                    [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
                ),
                "x ∧ ¬x — unsatisfiable",
            ),
            (
                CnfFormula::new(
                    2,
                    [
                        Clause::new([lit(0, true), lit(1, true)]),
                        Clause::new([lit(0, true), lit(1, false)]),
                        Clause::new([lit(0, false), lit(1, true)]),
                        Clause::new([lit(0, false), lit(1, false)]),
                    ],
                ),
                "all sign patterns — unsatisfiable",
            ),
            (paper_fig5_cnf(), "the paper's Fig. 5 CNF — satisfiable"),
        ]
    }

    #[test]
    fn etable_and_itable_possibility_reductions_match_the_sat_solver() {
        for (formula, label) in small_cnf_formulas() {
            let expected = formula.solve().is_sat();
            let e = sat_poss_etable(&formula);
            assert_eq!(
                possibility::decide(&e.view, &e.facts, budget()).unwrap(),
                expected,
                "e-table reduction on {label}"
            );
            let i = sat_poss_itable(&formula);
            assert_eq!(
                possibility::decide(&i.view, &i.facts, budget()).unwrap(),
                expected,
                "i-table reduction on {label}"
            );
        }
    }

    #[test]
    fn fig11_construction_shapes() {
        let formula = paper_fig5_cnf();
        let e = sat_poss_etable(&formula);
        // 2 rows per variable + one row per literal occurrence.
        assert_eq!(e.view.db.table("T").unwrap().len(), 2 * 5 + 15);
        assert_eq!(e.facts.fact_count(), 2 * 5 + 5);
        let i = sat_poss_itable(&formula);
        assert_eq!(i.view.db.table("T").unwrap().len(), 15);
        assert_eq!(i.facts.fact_count(), 5);
        assert!(!i.view.db.table("T").unwrap().global_condition().is_empty());
    }

    #[test]
    fn fo_possibility_reduction_matches_the_tautology_solver() {
        let cases = vec![
            (
                DnfFormula::new(
                    1,
                    [Clause::new([lit(0, true)]), Clause::new([lit(0, false)])],
                ),
                "x ∨ ¬x — tautology",
            ),
            (
                DnfFormula::new(2, [Clause::new([lit(0, true), lit(1, false)])]),
                "x ∧ ¬y — not a tautology",
            ),
        ];
        for (formula, label) in cases {
            let expected_possible = !formula.is_tautology();
            let reduction = nontaut_poss_fo(&formula);
            let answer = possibility::decide(&reduction.view, &reduction.facts, budget()).unwrap();
            assert_eq!(
                answer, expected_possible,
                "POSS(1, FO) reduction on {label}"
            );
        }
    }

    #[test]
    fn datalog_possibility_reduction_matches_the_sat_solver() {
        for (formula, label) in small_cnf_formulas() {
            if formula.num_vars > 2 || formula.clauses.len() > 4 {
                continue; // the enumeration fallback is exponential; keep unit tests small
            }
            let expected = formula.solve().is_sat();
            let reduction = sat_poss_datalog(&formula);
            let answer = possibility::decide(&reduction.view, &reduction.facts, budget()).unwrap();
            assert_eq!(answer, expected, "POSS(1, DATALOG) reduction on {label}");
        }
    }

    #[test]
    fn fig12_gadget_shape() {
        let formula = paper_fig5_cnf();
        let reduction = sat_poss_datalog(&formula);
        let db = &reduction.view.db;
        assert_eq!(db.table("R0").unwrap().len(), 1);
        // R1: 3 edges per variable + chain edges b_i→b_{i+1} + a→b_0 + one edge per literal
        // + b_n→1.
        assert_eq!(db.table("R1").unwrap().len(), 3 * 5 + 4 + 1 + 15 + 1);
        // R2: 3 edges per variable + x-edges + clause chain + a→h1 + h_m→1.
        assert_eq!(db.table("R2").unwrap().len(), 3 * 5 + 5 + 4 + 1 + 1);
        assert_eq!(db.variables().len(), 5);
    }
}
