//! Theorem 4.2(2,3,5): the remaining Π₂ᵖ containment lower bounds, the ones involving views
//! or e-tables on at least one side.
//!
//! * [`ae3cnf_cont_views_of_tables`] — ∀∃3CNF reduces to `CONT(-, q)` with Codd-tables on
//!   the left and a positive existential view `q = (q₁, q₂)` of Codd-tables on the right
//!   (Theorem 4.2(2), the Fig. 8 construction).
//! * [`ae3cnf_cont_view_into_etable`] — ∀∃3CNF reduces to `CONT(q₀, -)` with a positive
//!   existential view `q₀ = (q₀₁, q₀₂)` of Codd-tables on the left and e-tables on the right
//!   (Theorem 4.2(5), the Fig. 10 construction).
//! * [`ae3cnf_cont_ctable_into_etable`] — ∀∃3CNF reduces to `CONT(-, -)` with a c-table on
//!   the left and e-tables on the right (Theorem 4.2(3)).  The paper obtains this case by
//!   applying the c-table algebra of citation \[10\] to the left view of the 4.2(5) construction; we do
//!   exactly that, via [`View::to_ctables`].
//!
//! All three constructions reduce from the same Π₂ᵖ-complete ∀∃3CNF problem, so their unit
//! tests cross-validate the reductions (and the general containment procedure) against the
//! ground-truth QBF solver of `pw-solvers` on small instances.

use crate::ContainmentInstance;
use pw_condition::{Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, View};
use pw_query::{ConjunctiveQuery, QTerm, Query, QueryAtom, QueryDef, Ucq};
use pw_solvers::qbf::ForallExists3Cnf;

/// The constant used to encode propositional variable `l` (0-based) as a database constant.
/// Kept disjoint from the clause indices `1..=p` and the boolean constants 0/1 so that the
/// different namespaces of the constructions can never collide by accident; the paper's own
/// examples overlap them, which is harmless but harder to read.
fn var_const(l: usize) -> Term {
    Term::constant(l as i64 + 100)
}

/// The constant used to encode clause `k` (0-based) as a database constant.
fn clause_const(k: usize) -> Term {
    Term::constant(k as i64 + 1)
}

/// Theorem 4.2(2): ∀∃3CNF → `CONT(-, q)` where the left-hand side is the pair of
/// Codd-tables `(T₀(R₀), T₀(S₀))` and the right-hand side is the positive existential view
/// `q = (q₁, q₂)` of the pair of Codd-tables `(T(R), T(S))` — the Fig. 8 construction.
///
/// * `T₀(R₀) = {(i, vᵢ)}` for every universal variable `xᵢ`, with `vᵢ` a fresh null whose
///   value encodes the truth of `xᵢ` (1 = true, 0 = false, anything else = unconstrained).
/// * `T₀(S₀) = {k | k ∈ [1..p]}` — ground, one fact per clause.
/// * `T(R) = {(i, uᵢ)}` mirrors `R₀` with fresh nulls `uᵢ`.
/// * `T(S) = {(k, z_{k,j}, l, 1)}` for a positive occurrence of `x_l` as the `j`th literal of
///   clause `k` and `{(k, z_{k,j}, l, 0)}` for a negative one; the null `z_{k,j}` is the
///   "this literal is satisfied" marker (1 = satisfied).
/// * `q₁(x, y) = R(x, y)` copies the assignment, so containment forces `σ(uᵢ) = σ₀(vᵢ)`.
/// * `q₂(x)` returns every clause with a satisfied marker — `∃y z S(x, 1, y, z)` — plus the
///   poison constant 0 whenever the markers are inconsistent: a variable with both a
///   positive and a negative occurrence marked, or a marked positive (negative) occurrence
///   of a variable assigned 0 (1) in `R`.  Since the left output is exactly `{1, …, p}`,
///   the poison can never be produced and every clause must be marked — i.e. satisfied.
pub fn ae3cnf_cont_views_of_tables(instance: &ForallExists3Cnf) -> ContainmentInstance {
    let n = instance.universal_vars;
    let p = instance.clauses.len();
    let mut vars = VarGen::new();

    // ---- Left: (T₀(R₀), T₀(S₀)), both Codd-tables, under the identity. ----
    let v: Vec<Variable> = (0..n).map(|i| vars.named(format!("v{i}"))).collect();
    let r0_rows: Vec<Vec<Term>> = (0..n)
        .map(|i| vec![var_const(i), Term::Var(v[i])])
        .collect();
    let s0_rows: Vec<Vec<Term>> = (0..p).map(|k| vec![clause_const(k)]).collect();
    let left = View::identity(CDatabase::new([
        CTable::codd("Ro", 2, r0_rows).expect("R0 uses distinct nulls"),
        CTable::codd("So", 1, s0_rows).expect("S0 is ground"),
    ]));

    // ---- Right: the view q = (q₁, q₂) of (T(R), T(S)). ----
    let u: Vec<Variable> = (0..n).map(|i| vars.named(format!("u{i}"))).collect();
    let r_rows: Vec<Vec<Term>> = (0..n)
        .map(|i| vec![var_const(i), Term::Var(u[i])])
        .collect();
    let mut s_rows: Vec<Vec<Term>> = Vec::new();
    for (k, clause) in instance.clauses.iter().enumerate() {
        for (j, lit) in clause.literals().iter().enumerate() {
            let marker = vars.named(format!("z{k}_{j}"));
            s_rows.push(vec![
                clause_const(k),
                Term::Var(marker),
                var_const(lit.var),
                Term::constant(i64::from(lit.positive)),
            ]);
        }
    }
    let db = CDatabase::new([
        CTable::codd("R", 2, r_rows).expect("R uses distinct nulls"),
        CTable::codd("S", 4, s_rows).expect("S uses distinct nulls"),
    ]);

    // q₁(x, y) :- R(x, y).
    let q1 = Ucq::single(ConjunctiveQuery::new(
        [QTerm::var("x"), QTerm::var("y")],
        [QueryAtom::new("R", [QTerm::var("x"), QTerm::var("y")])],
    ));
    // q₂(x): the satisfied clauses plus the poison disjuncts.
    let satisfied_clause = ConjunctiveQuery::new(
        [QTerm::var("k")],
        [QueryAtom::new(
            "S",
            [
                QTerm::var("k"),
                QTerm::constant(1),
                QTerm::var("y"),
                QTerm::var("s"),
            ],
        )],
    );
    let both_signs_marked = ConjunctiveQuery::new(
        [QTerm::constant(0)],
        [
            QueryAtom::new(
                "S",
                [
                    QTerm::var("a"),
                    QTerm::constant(1),
                    QTerm::var("y"),
                    QTerm::constant(0),
                ],
            ),
            QueryAtom::new(
                "S",
                [
                    QTerm::var("b"),
                    QTerm::constant(1),
                    QTerm::var("y"),
                    QTerm::constant(1),
                ],
            ),
        ],
    );
    let false_var_marked_positive = ConjunctiveQuery::new(
        [QTerm::constant(0)],
        [
            QueryAtom::new("R", [QTerm::var("y"), QTerm::constant(0)]),
            QueryAtom::new(
                "S",
                [
                    QTerm::var("a"),
                    QTerm::constant(1),
                    QTerm::var("y"),
                    QTerm::constant(1),
                ],
            ),
        ],
    );
    let true_var_marked_negative = ConjunctiveQuery::new(
        [QTerm::constant(0)],
        [
            QueryAtom::new("R", [QTerm::var("y"), QTerm::constant(1)]),
            QueryAtom::new(
                "S",
                [
                    QTerm::var("a"),
                    QTerm::constant(1),
                    QTerm::var("y"),
                    QTerm::constant(0),
                ],
            ),
        ],
    );
    let q2 = Ucq::new([
        satisfied_clause,
        both_signs_marked,
        false_var_marked_positive,
        true_var_marked_negative,
    ])
    .expect("q2 is a well-formed UCQ");

    let query = Query::new([
        ("Ro".to_owned(), QueryDef::Ucq(q1)),
        ("So".to_owned(), QueryDef::Ucq(q2)),
    ])
    .expect("output names are distinct");

    ContainmentInstance {
        left,
        right: View::new(query, db),
    }
}

/// Theorem 4.2(5): ∀∃3CNF → `CONT(q₀, -)` where the left-hand side is the positive
/// existential view `q₀ = (q₀₁, q₀₂)` of the pair of Codd-tables `(T₀(R₀), T₀(S₀))` and the
/// right-hand side is the pair of e-tables `(T(R), T(S))` — the Fig. 10 construction.
///
/// * `T₀(R₀) = {(k, j, l) | k ∈ [1..p], j, l ∈ {0, 1}}` — ground, all four boolean pairs per
///   clause.
/// * `T₀(S₀) = {(i, yᵢ, zᵢ)}` for every universal variable, with fresh nulls `yᵢ, zᵢ`;
///   `σ₀(yᵢ) = σ₀(zᵢ)` encodes "`xᵢ` is true".
/// * `q₀₁(x, y, z) = R₀(x, y, z)` (named `R`), `q₀₂(x, w) = ∃y S₀(x, y, y) ∧ w = 1  ∨
///   ∃y z S₀(x, y, z) ∧ w = 0` (named `S`).
/// * `T(R)` holds, per clause `k`: a row `(k, u_l, 1)` for each positive literal `x_l`, a row
///   `(k, u_l, 0)` for each negative literal, the ground rows `(k, 1, 0)` and `(k, 0, 1)`,
///   and the diagonal row `(k, z_k, z_k)`.  Because the image of `T(R)` must be exactly the
///   four boolean pairs of `R₀`, the diagonal null `z_k` covers one of `(k,0,0)/(k,1,1)` and
///   a *satisfied literal* must cover the other.
/// * `T(S)` holds `(i, uᵢ)` and `(i, 0)` per universal variable, forcing `σ(uᵢ)` to be the
///   truth value encoded by `σ₀(yᵢ), σ₀(zᵢ)`.
///
/// The nulls `u_l` are shared between `T(R)` and `T(S)` exactly as in Fig. 10.
pub fn ae3cnf_cont_view_into_etable(instance: &ForallExists3Cnf) -> ContainmentInstance {
    let n = instance.universal_vars;
    let total = instance.num_vars();
    let p = instance.clauses.len();
    let mut vars = VarGen::new();

    // ---- Left: the view q₀ of (T₀(R₀), T₀(S₀)). ----
    let mut r0_rows: Vec<Vec<Term>> = Vec::new();
    for k in 0..p {
        for j in 0..=1i64 {
            for l in 0..=1i64 {
                r0_rows.push(vec![clause_const(k), Term::constant(j), Term::constant(l)]);
            }
        }
    }
    let y: Vec<Variable> = (0..n).map(|i| vars.named(format!("y{i}"))).collect();
    let z0: Vec<Variable> = (0..n).map(|i| vars.named(format!("z{i}"))).collect();
    let s0_rows: Vec<Vec<Term>> = (0..n)
        .map(|i| vec![var_const(i), Term::Var(y[i]), Term::Var(z0[i])])
        .collect();
    let left_db = CDatabase::new([
        CTable::codd("Ro", 3, r0_rows).expect("R0 is ground"),
        CTable::codd("So", 3, s0_rows).expect("S0 uses distinct nulls"),
    ]);

    // q₀₁ (output R) copies R₀; q₀₂ (output S) reads off the encoded truth values.
    let q01 = Ucq::single(ConjunctiveQuery::new(
        [QTerm::var("x"), QTerm::var("y"), QTerm::var("z")],
        [QueryAtom::new(
            "Ro",
            [QTerm::var("x"), QTerm::var("y"), QTerm::var("z")],
        )],
    ));
    let truthy = ConjunctiveQuery::new(
        [QTerm::var("x"), QTerm::constant(1)],
        [QueryAtom::new(
            "So",
            [QTerm::var("x"), QTerm::var("y"), QTerm::var("y")],
        )],
    );
    let always_zero = ConjunctiveQuery::new(
        [QTerm::var("x"), QTerm::constant(0)],
        [QueryAtom::new(
            "So",
            [QTerm::var("x"), QTerm::var("y"), QTerm::var("z")],
        )],
    );
    let q02 = Ucq::new([truthy, always_zero]).expect("q02 is a well-formed UCQ");
    let q0 = Query::new([
        ("R".to_owned(), QueryDef::Ucq(q01)),
        ("S".to_owned(), QueryDef::Ucq(q02)),
    ])
    .expect("output names are distinct");
    let left = View::new(q0, left_db);

    // ---- Right: the e-tables (T(R), T(S)), sharing the u nulls. ----
    let u: Vec<Variable> = (0..total).map(|l| vars.named(format!("u{l}"))).collect();
    let z: Vec<Variable> = (0..p).map(|k| vars.named(format!("zc{k}"))).collect();
    let mut r_rows: Vec<Vec<Term>> = Vec::new();
    for (k, clause) in instance.clauses.iter().enumerate() {
        for lit in clause.literals() {
            r_rows.push(vec![
                clause_const(k),
                Term::Var(u[lit.var]),
                Term::constant(i64::from(lit.positive)),
            ]);
        }
        r_rows.push(vec![clause_const(k), Term::constant(1), Term::constant(0)]);
        r_rows.push(vec![clause_const(k), Term::constant(0), Term::constant(1)]);
        r_rows.push(vec![clause_const(k), Term::Var(z[k]), Term::Var(z[k])]);
    }
    let mut s_rows: Vec<Vec<Term>> = Vec::new();
    for (i, &ui) in u.iter().enumerate().take(n) {
        s_rows.push(vec![var_const(i), Term::Var(ui)]);
        s_rows.push(vec![var_const(i), Term::constant(0)]);
    }
    let right = View::identity(CDatabase::new([
        CTable::e_table("R", 3, r_rows).expect("arity is uniform"),
        CTable::e_table("S", 2, s_rows).expect("arity is uniform"),
    ]));

    ContainmentInstance { left, right }
}

/// Theorem 4.2(3): ∀∃3CNF → `CONT(-, -)` with a c-table database on the left and e-tables on
/// the right.
///
/// The paper derives this case from 4.2(5) "and the technique of \[10\]": applying the c-table
/// algebra to the left view of the Fig. 10 construction yields a c-table database
/// representing the same set of worlds, so the containment question is unchanged.  We do
/// exactly that — [`ae3cnf_cont_view_into_etable`] builds the 4.2(5) instance and
/// [`View::to_ctables`] materialises its left view as c-tables (the `S` output picks up
/// genuine local conditions from the `S₀(x, y, y)` join).
pub fn ae3cnf_cont_ctable_into_etable(instance: &ForallExists3Cnf) -> ContainmentInstance {
    let base = ae3cnf_cont_view_into_etable(instance);
    let ctables = base
        .left
        .to_ctables()
        .expect("the left query is a vector of UCQs")
        .expect("the left query only references its own tables");
    ContainmentInstance {
        left: View::identity(ctables),
        right: base.right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_core::TableClass;
    use pw_decide::{containment, Budget};
    use pw_query::QueryClass;
    use pw_solvers::qbf::decide_forall_exists;
    use pw_solvers::{Clause, Literal};

    fn lit(v: usize, s: bool) -> Literal {
        Literal {
            var: v,
            positive: s,
        }
    }

    fn budget() -> Budget {
        Budget(50_000_000)
    }

    /// Tiny ∀∃3CNF instances (one universal variable) whose answers differ, used to check
    /// the iff property of every construction against the ground-truth QBF solver.
    fn tiny_qbf_instances() -> Vec<(ForallExists3Cnf, &'static str)> {
        vec![
            (
                ForallExists3Cnf::new(
                    1,
                    1,
                    [
                        Clause::new([lit(0, true), lit(1, false), lit(1, false)]),
                        Clause::new([lit(0, false), lit(1, true), lit(1, true)]),
                    ],
                ),
                "∀x ∃y (x ∨ ¬y)(¬x ∨ y) — true",
            ),
            (
                ForallExists3Cnf::new(
                    1,
                    1,
                    [Clause::new([lit(0, true), lit(0, true), lit(0, true)])],
                ),
                "∀x ∃y (x) — false",
            ),
            (
                ForallExists3Cnf::new(
                    1,
                    1,
                    [
                        Clause::new([lit(1, true), lit(1, true), lit(1, true)]),
                        Clause::new([lit(0, true), lit(0, true), lit(1, false)]),
                    ],
                ),
                "∀x ∃y (y)(x ∨ ¬y) — false",
            ),
            (
                ForallExists3Cnf::new(
                    1,
                    1,
                    [
                        Clause::new([lit(0, true), lit(1, true), lit(1, true)]),
                        Clause::new([lit(0, false), lit(1, true), lit(1, true)]),
                    ],
                ),
                "∀x ∃y (x ∨ y)(¬x ∨ y) — true",
            ),
            (
                ForallExists3Cnf::new(
                    2,
                    1,
                    [
                        Clause::new([lit(0, true), lit(1, true), lit(2, true)]),
                        Clause::new([lit(0, false), lit(1, false), lit(2, false)]),
                    ],
                ),
                "∀x1 x2 ∃y (x1∨x2∨y)(¬x1∨¬x2∨¬y) — true",
            ),
        ]
    }

    #[test]
    fn theorem_42_2_reduction_matches_the_qbf_solver() {
        for (instance, label) in tiny_qbf_instances() {
            let expected = decide_forall_exists(&instance);
            let reduction = ae3cnf_cont_views_of_tables(&instance);
            let answer = containment::decide(&reduction.left, &reduction.right, budget()).unwrap();
            assert_eq!(answer, expected, "Thm 4.2(2) reduction on {label}");
        }
    }

    #[test]
    fn theorem_42_5_reduction_matches_the_qbf_solver() {
        for (instance, label) in tiny_qbf_instances() {
            let expected = decide_forall_exists(&instance);
            let reduction = ae3cnf_cont_view_into_etable(&instance);
            let answer = containment::decide(&reduction.left, &reduction.right, budget()).unwrap();
            assert_eq!(answer, expected, "Thm 4.2(5) reduction on {label}");
        }
    }

    #[test]
    fn theorem_42_3_reduction_matches_the_qbf_solver() {
        for (instance, label) in tiny_qbf_instances() {
            let expected = decide_forall_exists(&instance);
            let reduction = ae3cnf_cont_ctable_into_etable(&instance);
            let answer = containment::decide(&reduction.left, &reduction.right, budget()).unwrap();
            assert_eq!(answer, expected, "Thm 4.2(3) reduction on {label}");
        }
    }

    #[test]
    fn fig8_construction_shape() {
        // The Fig. 8 instance is the Fig. 5 formula: n = 2 universal variables, p = 5
        // clauses of 3 literals each.
        let instance = ForallExists3Cnf::paper_fig5();
        let reduction = ae3cnf_cont_views_of_tables(&instance);
        let r0 = reduction.left.db.table("Ro").unwrap();
        let s0 = reduction.left.db.table("So").unwrap();
        assert_eq!(r0.len(), 2);
        assert_eq!(s0.len(), 5);
        assert_eq!(r0.classify(), TableClass::Codd);
        assert_eq!(s0.classify(), TableClass::Codd);

        let r = reduction.right.db.table("R").unwrap();
        let s = reduction.right.db.table("S").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(s.len(), 15, "one S row per literal occurrence");
        assert_eq!(reduction.right.db.classify(), TableClass::Codd);
        // The view's query is positive existential (no ≠, no negation, no recursion).
        assert_eq!(
            reduction.right.query_class(),
            QueryClass::PositiveExistential
        );
    }

    #[test]
    fn fig10_construction_shape() {
        let instance = ForallExists3Cnf::paper_fig5();
        let reduction = ae3cnf_cont_view_into_etable(&instance);
        let r0 = reduction.left.db.table("Ro").unwrap();
        let s0 = reduction.left.db.table("So").unwrap();
        assert_eq!(r0.len(), 4 * 5, "four boolean pairs per clause");
        assert_eq!(s0.len(), 2, "one row per universal variable");
        assert_eq!(
            reduction.left.query_class(),
            QueryClass::PositiveExistential
        );

        let r = reduction.right.db.table("R").unwrap();
        let s = reduction.right.db.table("S").unwrap();
        // Per clause: 3 literal rows + 2 ground rows + 1 diagonal row.
        assert_eq!(r.len(), 5 * 6);
        assert_eq!(s.len(), 2 * 2);
        assert_eq!(r.classify(), TableClass::ETable);
        // S has no repeated variable of its own but shares the u nulls with R, which is the
        // point of the construction; per-table it is still (at most) an e-table.
        assert!(s.classify() <= TableClass::ETable);
        assert!(reduction.right.db.tables_share_variables());
        assert!(reduction.right.query.is_identity());
    }

    #[test]
    fn theorem_42_3_left_is_a_genuine_ctable() {
        let instance = ForallExists3Cnf::paper_fig5();
        let reduction = ae3cnf_cont_ctable_into_etable(&instance);
        assert!(reduction.left.query.is_identity());
        // The S output of the algebra carries local equality conditions (from the
        // S₀(x, y, y) join), which is what makes the left database a c-table.
        let s = reduction.left.db.table("S").unwrap();
        assert_eq!(s.classify(), TableClass::CTable);
        assert!(s.tuples().iter().any(|t| !t.has_trivial_condition()));
        // The right-hand side is untouched.
        assert_eq!(reduction.right.db.classify(), TableClass::ETable);
    }

    #[test]
    fn theorem_42_3_left_represents_the_same_worlds_as_the_42_5_view() {
        // rep(to_ctables(q₀(T₀))) must equal q₀(rep(T₀)) — spot-check on a tiny instance by
        // enumerating both sides over a shared domain.
        let instance = ForallExists3Cnf::new(
            1,
            0,
            [Clause::new([lit(0, true), lit(0, true), lit(0, true)])],
        );
        let view_form = ae3cnf_cont_view_into_etable(&instance);
        let ctable_form = ae3cnf_cont_ctable_into_etable(&instance);
        let shared: Vec<_> = view_form
            .left
            .db
            .constants()
            .into_iter()
            .chain(ctable_form.left.db.constants())
            .collect();
        let direct = view_form
            .left
            .enumerate_worlds(200_000, shared.clone())
            .unwrap();
        let via_algebra = ctable_form.left.enumerate_worlds(200_000, shared).unwrap();
        for world in &direct {
            assert!(
                via_algebra.contains(world),
                "world missing from the c-table form: {world}"
            );
        }
    }
}
