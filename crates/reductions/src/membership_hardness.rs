//! Theorem 3.1(2,3,4): graph 3-colourability reduces to the membership problem on
//! e-tables, i-tables and positive existential views of Codd-tables.

use crate::MembershipInstance;
use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, View};
use pw_query::{qatom, ConjunctiveQuery, QTerm, Query, QueryDef, Ucq};
use pw_relational::{Instance, Relation, Tuple};
use pw_solvers::Graph;
use std::collections::BTreeMap;

/// The three colours.
const COLORS: [i64; 3] = [1, 2, 3];

/// All ordered pairs of distinct colours `(i, j)`.
fn distinct_color_pairs() -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    for &i in &COLORS {
        for &j in &COLORS {
            if i != j {
                out.push((i, j));
            }
        }
    }
    out
}

/// Vertex `a` is encoded as the constant `10 + a` so that vertex names never collide with
/// the colour constants 1, 2, 3 (the paper keeps them in the same namespace because its
/// examples stay small; separating them changes nothing in the argument).
fn vertex_constant(v: usize) -> i64 {
    10 + v as i64
}

/// Theorem 3.1(2): 3-colourability → `MEMB(-)` on a single e-table of arity 2.
///
/// The e-table holds every ordered pair of distinct colours plus one row `(x_a, x_b)` per
/// (arbitrarily oriented) edge; the candidate instance holds exactly the colour pairs.
/// The instance is a possible world iff the edge rows can be instantiated *inside* the
/// colour pairs — i.e. iff adjacent vertices can be given distinct colours.
pub fn three_col_etable(graph: &Graph) -> MembershipInstance {
    let mut vars = VarGen::new();
    let node_var: Vec<Variable> = (0..graph.vertex_count())
        .map(|v| vars.named(format!("x{v}")))
        .collect();

    let mut rows: Vec<Vec<Term>> = distinct_color_pairs()
        .into_iter()
        .map(|(i, j)| vec![Term::constant(i), Term::constant(j)])
        .collect();
    for (a, b) in graph.edges() {
        rows.push(vec![Term::Var(node_var[a]), Term::Var(node_var[b])]);
    }
    let table = CTable::e_table("T", 2, rows).expect("e-table construction");

    let instance = Instance::single(
        "T",
        Relation::from_tuples(
            2,
            distinct_color_pairs()
                .into_iter()
                .map(|(i, j)| Tuple::new([i.into(), j.into()])),
        ),
    );

    MembershipInstance {
        view: View::identity(CDatabase::single(table)),
        instance,
    }
}

/// Theorem 3.1(3): 3-colourability → `MEMB(-)` on a single i-table of arity 1.
///
/// The i-table holds the three colours and one variable per vertex, with the global
/// condition `x_a ≠ x_b` for every edge; the candidate instance is `{1, 2, 3}`.
pub fn three_col_itable(graph: &Graph) -> MembershipInstance {
    let mut vars = VarGen::new();
    let node_var: Vec<Variable> = (0..graph.vertex_count())
        .map(|v| vars.named(format!("x{v}")))
        .collect();

    let mut rows: Vec<Vec<Term>> = COLORS.iter().map(|&c| vec![Term::constant(c)]).collect();
    rows.extend(node_var.iter().map(|&v| vec![Term::Var(v)]));
    let global = Conjunction::new(
        graph
            .edges()
            .map(|(a, b)| Atom::neq(node_var[a], node_var[b])),
    );
    let table = CTable::i_table("T", 1, global, rows).expect("i-table construction");

    let instance = Instance::single(
        "T",
        Relation::from_tuples(1, COLORS.iter().map(|&c| Tuple::new([c.into()]))),
    );

    MembershipInstance {
        view: View::identity(CDatabase::single(table)),
        instance,
    }
}

/// Theorem 3.1(4): 3-colourability → `MEMB(q)` for a fixed positive existential query `q`
/// on a pair of Codd-tables (the construction of Fig. 4(d)).
///
/// `T(R)` has one row `(b_j, x_j, c_j, y_j, j)` per edge `j = (b_j, c_j)` — the second and
/// fourth columns are the (unknown) colours of the edge's endpoints; `T(S)` lists the
/// ordered pairs of distinct colours.  The query outputs
///
/// * `R0(x, z, z')` — vertex `x` occurs in edges `z` and `z'` *with the same colour* in
///   both (query `q₁`), and
/// * `S0(z)` — edge `z` has properly coloured endpoints (query `q₂`),
///
/// and the candidate instance says this holds for every co-incident edge pair and every
/// edge — which is achievable iff the graph is 3-colourable.
pub fn three_col_view(graph: &Graph) -> MembershipInstance {
    let mut vars = VarGen::new();
    let edges: Vec<(usize, usize)> = graph.edges().collect();
    let m = edges.len();
    let x: Vec<Variable> = (0..m).map(|j| vars.named(format!("x{j}"))).collect();
    let y: Vec<Variable> = (0..m).map(|j| vars.named(format!("y{j}"))).collect();

    // T(R): one row per edge.
    let r_rows: Vec<Vec<Term>> = edges
        .iter()
        .enumerate()
        .map(|(j, &(b, c))| {
            vec![
                Term::constant(vertex_constant(b)),
                Term::Var(x[j]),
                Term::constant(vertex_constant(c)),
                Term::Var(y[j]),
                Term::constant(j as i64 + 1),
            ]
        })
        .collect();
    let t_r = CTable::codd("R", 5, r_rows).expect("R rows use distinct variables");

    // T(S): the distinct colour pairs.
    let s_rows: Vec<Vec<Term>> = distinct_color_pairs()
        .into_iter()
        .map(|(i, j)| vec![Term::constant(i), Term::constant(j)])
        .collect();
    let t_s = CTable::codd("S", 2, s_rows).expect("S is ground");

    // q1(x, z, z') — the vertex x is mentioned by edges z and z' with a single colour y.
    // Four disjuncts choose whether x is the first or the third column in each edge row.
    let q1 = {
        let head = [QTerm::var("x"), QTerm::var("z"), QTerm::var("zp")];
        let first = |z: &str, v: &str, w: &str| qatom!("R"; "x", "y", v, w, z);
        let second = |z: &str, v: &str, w: &str| qatom!("R"; v, w, "x", "y", z);
        let d = |a: pw_query::QueryAtom, b: pw_query::QueryAtom| {
            ConjunctiveQuery::new(head.clone(), [a, b])
        };
        Ucq::new([
            d(first("z", "v1", "w1"), first("zp", "v2", "w2")),
            d(first("z", "v1", "w1"), second("zp", "v2", "w2")),
            d(second("z", "v1", "w1"), first("zp", "v2", "w2")),
            d(second("z", "v1", "w1"), second("zp", "v2", "w2")),
        ])
        .expect("q1 is well formed")
    };
    // q2(z) — the edge z's two colours form a legal (distinct) pair.
    let q2 = Ucq::single(ConjunctiveQuery::new(
        [QTerm::var("z")],
        [qatom!("R"; "x", "y", "v", "w", "z"), qatom!("S"; "y", "w")],
    ));
    let query = Query::new([
        ("R0".to_owned(), QueryDef::Ucq(q1)),
        ("S0".to_owned(), QueryDef::Ucq(q2)),
    ])
    .expect("query construction");

    // The candidate instance: R0 = all (vertex, edge, edge) incidences, S0 = all edges.
    let mut r0 = Relation::empty(3);
    for (j, &(bj, cj)) in edges.iter().enumerate() {
        for (k, &(bk, ck)) in edges.iter().enumerate() {
            for v in [bj, cj] {
                if v == bk || v == ck {
                    r0.insert(Tuple::new([
                        vertex_constant(v).into(),
                        (j as i64 + 1).into(),
                        (k as i64 + 1).into(),
                    ]))
                    .expect("arity 3");
                }
            }
        }
    }
    let s0 = Relation::from_tuples(1, (1..=m as i64).map(|j| Tuple::new([j.into()])));
    let instance = Instance::from_relations([("R0".to_owned(), r0), ("S0".to_owned(), s0)]);

    MembershipInstance {
        view: View::new(query, CDatabase::new([t_r, t_s])),
        instance,
    }
}

/// A labelled family of small graphs used by the reduction self-tests.
pub fn small_test_graphs() -> Vec<(Graph, &'static str)> {
    // K4 plus an isolated vertex — still not 3-colourable.
    let mut k4_plus_isolated = Graph::new(5);
    for i in 0..4 {
        for j in (i + 1)..4 {
            k4_plus_isolated.add_edge(i, j);
        }
    }
    vec![
        (Graph::new(1), "single vertex"),
        (Graph::complete(3), "triangle (3-colourable)"),
        (Graph::complete(4), "K4 (not 3-colourable)"),
        (Graph::cycle(5), "odd cycle (3-colourable)"),
        (Graph::paper_fig4a(), "the paper's Fig. 4(a) graph"),
        (k4_plus_isolated, "K4 plus isolated vertex"),
    ]
}

/// The colour→tuple map used by Fig. 4(c): retained for the figure-reproduction tests.
pub fn color_pairs_relation() -> Relation {
    Relation::from_tuples(
        2,
        distinct_color_pairs()
            .into_iter()
            .map(|(i, j)| Tuple::new([i.into(), j.into()])),
    )
}

/// Summary data useful to benchmarks: number of variables and rows of each construction.
pub fn construction_sizes(graph: &Graph) -> BTreeMap<&'static str, (usize, usize)> {
    let e = three_col_etable(graph);
    let i = three_col_itable(graph);
    let v = three_col_view(graph);
    let mut out = BTreeMap::new();
    out.insert(
        "etable",
        (e.view.db.variables().len(), e.view.db.row_count()),
    );
    out.insert(
        "itable",
        (i.view.db.variables().len(), i.view.db.row_count()),
    );
    out.insert("view", (v.view.db.variables().len(), v.view.db.row_count()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_decide::{membership, Budget};
    use pw_solvers::coloring::is_three_colorable;

    fn check_iff(graph: &Graph, label: &str) {
        let expected = is_three_colorable(graph);
        let budget = Budget(5_000_000);

        let e = three_col_etable(graph);
        assert_eq!(
            membership::decide(&e.view.db, &e.instance, budget).unwrap(),
            expected,
            "e-table reduction on {label}"
        );

        let i = three_col_itable(graph);
        assert_eq!(
            membership::decide(&i.view.db, &i.instance, budget).unwrap(),
            expected,
            "i-table reduction on {label}"
        );

        // The view reduction is the most expensive of the three (the NP search must
        // exhaust its space on "no" instances); keep the routine test to small edge
        // counts and exercise the negative case in the ignored test below.
        if graph.edge_count() <= 5 {
            let v = three_col_view(graph);
            assert_eq!(
                membership::view_membership(&v.view, &v.instance, budget).unwrap(),
                expected,
                "view reduction on {label}"
            );
        }
    }

    #[test]
    fn reductions_agree_with_the_coloring_solver() {
        for (graph, label) in small_test_graphs() {
            check_iff(&graph, label);
        }
    }

    /// The negative direction of the Theorem 3.1(4) reduction on the smallest
    /// non-3-colourable graph (K₄).  Exhausting the NP search space takes a while, which is
    /// exactly the lower bound at work — run with `cargo test -- --ignored` when needed.
    #[test]
    #[ignore = "exhaustive no-instance search; run explicitly"]
    fn view_reduction_rejects_k4() {
        let v = three_col_view(&Graph::complete(4));
        assert!(!membership::view_membership(&v.view, &v.instance, Budget(2_000_000_000)).unwrap());
    }

    #[test]
    fn fig4_shapes() {
        // Fig. 4(b): the i-table for the example graph has 3 colour rows + 5 vertex rows
        // and five inequality atoms.
        let g = Graph::paper_fig4a();
        let i = three_col_itable(&g);
        let table = i.view.db.table("T").unwrap();
        assert_eq!(table.len(), 8);
        assert_eq!(table.global_condition().len(), 5);
        // Fig. 4(c): the e-table has 6 colour pairs + 5 edge rows; the instance has 6 facts.
        let e = three_col_etable(&g);
        assert_eq!(e.view.db.table("T").unwrap().len(), 11);
        assert_eq!(e.instance.fact_count(), 6);
        // Fig. 4(d): T(R) has one row per edge, T(S) has six rows; S0 lists the edges.
        let v = three_col_view(&g);
        assert_eq!(v.view.db.table("R").unwrap().len(), 5);
        assert_eq!(v.view.db.table("S").unwrap().len(), 6);
        assert_eq!(v.instance.relation("S0").unwrap().len(), 5);
    }

    #[test]
    fn construction_sizes_grow_linearly() {
        let small = construction_sizes(&Graph::cycle(4));
        let large = construction_sizes(&Graph::cycle(8));
        for key in ["etable", "itable", "view"] {
            assert!(small[key].0 < large[key].0);
            assert!(small[key].1 < large[key].1);
        }
    }
}
