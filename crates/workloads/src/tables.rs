//! Random table and instance generators for the PTIME cells of the classification.
//!
//! Each generator produces a table of the requested class with a controllable number of
//! rows, arity, constant-pool size and null density; [`member_instance`] draws a valuation
//! at random and applies it, producing a guaranteed "yes" instance for the membership /
//! possibility problems, while [`non_member_instance`] perturbs such an instance until it
//! (very likely) falls outside the representation.

use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, CTuple, Valuation};
use pw_relational::{Constant, Instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters shared by the table generators.
#[derive(Clone, Copy, Debug)]
pub struct TableParams {
    /// Number of rows.
    pub rows: usize,
    /// Arity of the table.
    pub arity: usize,
    /// Size of the constant pool (constants are the integers `0..constants`).
    pub constants: usize,
    /// Probability that a cell holds a null rather than a constant.
    pub null_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TableParams {
    fn default() -> Self {
        TableParams {
            rows: 64,
            arity: 3,
            constants: 16,
            null_density: 0.3,
            seed: 0,
        }
    }
}

impl TableParams {
    /// Convenience constructor used by the benchmark sweeps: everything default except the
    /// row count and seed.
    pub fn with_rows(rows: usize, seed: u64) -> Self {
        TableParams {
            rows,
            seed,
            ..TableParams::default()
        }
    }
}

fn random_constant(rng: &mut StdRng, params: &TableParams) -> Constant {
    Constant::Int(rng.gen_range(0..params.constants as i64))
}

/// A random Codd-table: each cell is independently a fresh null (with probability
/// `null_density`) or a random constant.
pub fn random_codd_table(name: &str, params: &TableParams) -> CTable {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut vars = VarGen::new();
    let rows: Vec<Vec<Term>> = (0..params.rows)
        .map(|_| {
            (0..params.arity)
                .map(|_| {
                    if rng.gen_bool(params.null_density) {
                        Term::Var(vars.fresh())
                    } else {
                        Term::from(random_constant(&mut rng, params))
                    }
                })
                .collect()
        })
        .collect();
    CTable::codd(name, params.arity, rows).expect("fresh nulls never repeat")
}

/// A random e-table: like a Codd-table but nulls are drawn from a small pool so that
/// repetitions (equalities folded into the table) actually occur.
pub fn random_etable(name: &str, params: &TableParams) -> CTable {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut vars = VarGen::new();
    let pool: Vec<Variable> = (0..(params.rows / 2).max(1))
        .map(|_| vars.fresh())
        .collect();
    let rows: Vec<Vec<Term>> = (0..params.rows)
        .map(|_| {
            (0..params.arity)
                .map(|_| {
                    if rng.gen_bool(params.null_density) {
                        Term::Var(pool[rng.gen_range(0..pool.len())])
                    } else {
                        Term::from(random_constant(&mut rng, params))
                    }
                })
                .collect()
        })
        .collect();
    CTable::e_table(name, params.arity, rows).expect("arity is uniform")
}

/// A random i-table: a Codd-table plus a global condition of random inequalities between
/// its nulls (and occasionally a constant).
pub fn random_itable(name: &str, params: &TableParams) -> CTable {
    let codd = random_codd_table(name, params);
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let nulls: Vec<Variable> = codd.variables().into_iter().collect();
    let mut condition = Conjunction::truth();
    if nulls.len() >= 2 {
        let atoms = (nulls.len() / 2).max(1);
        for _ in 0..atoms {
            let a = nulls[rng.gen_range(0..nulls.len())];
            if rng.gen_bool(0.5) {
                let b = nulls[rng.gen_range(0..nulls.len())];
                if a != b {
                    condition.push(Atom::neq(a, b));
                }
            } else {
                condition.push(Atom::neq(a, random_constant(&mut rng, params)));
            }
        }
    }
    CTable::i_table(
        name,
        params.arity,
        condition,
        codd.tuples().iter().map(|t| t.terms.clone()),
    )
    .expect("rows come from a Codd-table and the condition is inequalities-only")
}

/// A random g-table: an e-table plus a global condition mixing a few equalities (between
/// nulls and constants) and inequalities.
pub fn random_gtable(name: &str, params: &TableParams) -> CTable {
    let etable = random_etable(name, params);
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(2));
    let nulls: Vec<Variable> = etable.variables().into_iter().collect();
    let mut condition = Conjunction::truth();
    for _ in 0..(nulls.len() / 4).max(1) {
        if nulls.is_empty() {
            break;
        }
        let a = nulls[rng.gen_range(0..nulls.len())];
        let c = random_constant(&mut rng, params);
        let atom = if rng.gen_bool(0.5) {
            Atom::eq(a, c)
        } else {
            Atom::neq(a, c)
        };
        // Keep the global condition satisfiable by construction (e.g. never both
        // `a = c` and `a ≠ c`): an unsatisfiable condition represents the empty set
        // of worlds, which would make every member-instance workload degenerate.
        condition.push(atom);
        if !condition.is_satisfiable() {
            let dropped = condition.atoms().len() - 1;
            condition = Conjunction::new(condition.atoms()[..dropped].iter().cloned());
        }
    }
    CTable::g_table(
        name,
        params.arity,
        condition,
        etable.tuples().iter().map(|t| t.terms.clone()),
    )
    .expect("rows come from an e-table")
}

/// A random c-table: a g-table whose rows additionally carry local conditions comparing a
/// designated "switch" null against constants.
pub fn random_ctable(name: &str, params: &TableParams) -> CTable {
    let gtable = random_gtable(name, params);
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(3));
    let mut vars = VarGen::new();
    let switches: Vec<Variable> = (0..3).map(|_| vars.fresh()).collect();
    let rows: Vec<CTuple> = gtable
        .tuples()
        .iter()
        .map(|row| {
            if rng.gen_bool(0.5) {
                let s = switches[rng.gen_range(0..switches.len())];
                let c = random_constant(&mut rng, params);
                let atom = if rng.gen_bool(0.5) {
                    Atom::eq(s, c)
                } else {
                    Atom::neq(s, c)
                };
                CTuple::with_condition(row.terms.clone(), Conjunction::single(atom))
            } else {
                row.clone()
            }
        })
        .collect();
    CTable::new(name, params.arity, gtable.global_condition().clone(), rows)
        .expect("arity unchanged")
}

/// A guaranteed member of `rep(db)`: apply a random valuation that satisfies the global
/// conditions (nulls forced by equalities take their forced value, everything else is
/// drawn from the constant pool, retrying on conflicts with inequalities).
pub fn member_instance(db: &CDatabase, params: &TableParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(7));
    let nulls: Vec<Variable> = db.variables().into_iter().collect();
    // Variables the combined global condition forces to a constant must take exactly
    // that value — with hundreds of equality atoms (large g-tables) a blind rejection
    // sample would essentially never satisfy them all at once.
    let mut combined = Conjunction::truth();
    for t in db.tables() {
        combined = combined.and(t.global_condition());
    }
    let forced: std::collections::HashMap<Variable, pw_relational::Sym> = combined
        .forced_constants()
        .map(|pairs| pairs.into_iter().collect())
        .unwrap_or_default();
    let value_of =
        |v: Variable, fallback: Constant| forced.get(&v).map(|s| s.constant()).unwrap_or(fallback);
    // Rejection-sample the unforced variables until the global conditions hold; the
    // generators above keep the residual (inequality) constraints loose enough that this
    // terminates quickly.
    for attempt in 0..1000 {
        let valuation = Valuation::from_pairs(nulls.iter().map(|&v| {
            (
                v,
                value_of(
                    v,
                    Constant::Int(rng.gen_range(0..(params.constants as i64 + attempt))),
                ),
            )
        }));
        if let Some(world) = valuation.world_of(db) {
            return world;
        }
    }
    // Fall back to the frozen instance: forced values plus pairwise distinct fresh
    // values, which satisfies any satisfiable mix of forced equalities and inequalities.
    let fresh_base = params.constants as i64 + 1000;
    let valuation = Valuation::from_pairs(
        nulls
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, value_of(v, Constant::Int(fresh_base + i as i64)))),
    );
    valuation.world_of(db).expect(
        "forced equalities plus distinct fresh values satisfy the generators' global conditions",
    )
}

/// An instance that is (very likely) *not* a member: a member instance with one fact's
/// first component replaced by a constant outside the generator's pool.
pub fn non_member_instance(db: &CDatabase, params: &TableParams) -> Instance {
    let member = member_instance(db, params);
    let mut out = Instance::new();
    let poison = Constant::Int(-1);
    for (name, rel) in member.iter() {
        let mut new_rel = pw_relational::Relation::empty(rel.arity());
        for (i, fact) in rel.iter().enumerate() {
            let fact = if i == 0 && rel.arity() > 0 {
                let mut values: Vec<Constant> = fact.iter().cloned().collect();
                values[0] = poison.clone();
                pw_relational::Tuple::new(values)
            } else {
                fact.clone()
            };
            new_rel.insert(fact).expect("arity preserved");
        }
        out.insert_relation(name.clone(), new_rel);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_core::TableClass;
    use pw_decide::{membership, Budget};

    fn params(rows: usize, seed: u64) -> TableParams {
        TableParams {
            rows,
            arity: 3,
            constants: 8,
            null_density: 0.3,
            seed,
        }
    }

    #[test]
    fn generators_produce_the_requested_classes() {
        let p = params(24, 1);
        assert_eq!(random_codd_table("T", &p).classify(), TableClass::Codd);
        assert!(random_etable("T", &p).classify() <= TableClass::ETable);
        assert_eq!(random_itable("T", &p).classify(), TableClass::ITable);
        assert!(random_gtable("T", &p).classify() <= TableClass::GTable);
        let c = random_ctable("T", &p);
        assert_eq!(c.classify(), TableClass::CTable);
        assert_eq!(c.len(), 24);
    }

    #[test]
    fn generators_are_deterministic() {
        // Variable ids are allocated from a process-wide counter, so two runs of the same
        // generator can never be `==`; determinism means the tables agree up to which fresh
        // nulls were handed out, i.e. they are alpha-equivalent.
        let p = params(16, 9);
        assert!(random_codd_table("T", &p).alpha_equivalent(&random_codd_table("T", &p)));
        assert!(random_etable("T", &p).alpha_equivalent(&random_etable("T", &p)));
        assert!(random_itable("T", &p).alpha_equivalent(&random_itable("T", &p)));
        assert!(random_gtable("T", &p).alpha_equivalent(&random_gtable("T", &p)));
        assert!(random_ctable("T", &p).alpha_equivalent(&random_ctable("T", &p)));
        // Different seeds give structurally different tables.
        let q = params(16, 10);
        assert!(!random_codd_table("T", &p).alpha_equivalent(&random_codd_table("T", &q)));
    }

    #[test]
    fn member_instances_are_members() {
        for seed in 0..3 {
            let p = params(12, seed);
            let db = CDatabase::single(random_codd_table("T", &p));
            let instance = member_instance(&db, &p);
            assert!(membership::decide(&db, &instance, Budget::default()).unwrap());
            let db_i = CDatabase::single(random_itable("T", &p));
            let instance_i = member_instance(&db_i, &p);
            assert!(membership::decide(&db_i, &instance_i, Budget::default()).unwrap());
        }
    }

    #[test]
    fn non_member_instances_are_rejected_for_codd_tables() {
        // The poison constant −1 is outside the generator pool and cannot be produced by
        // any constant cell; with nulls present it *could* still be absorbed, so we only
        // check the fully-ground case deterministically.
        let p = TableParams {
            null_density: 0.0,
            ..params(12, 4)
        };
        let db = CDatabase::single(random_codd_table("T", &p));
        let bad = non_member_instance(&db, &p);
        assert!(!membership::decide(&db, &bad, Budget::default()).unwrap());
    }

    #[test]
    fn member_instance_respects_global_conditions() {
        let p = params(10, 11);
        let db = CDatabase::single(random_gtable("T", &p));
        let instance = member_instance(&db, &p);
        assert!(membership::decide(&db, &instance, Budget::default()).unwrap());
    }
}
