//! Random propositional formula generators (3CNF, 3DNF, ∀∃3CNF).

use pw_solvers::qbf::ForallExists3Cnf;
use pw_solvers::{Clause, CnfFormula, DnfFormula, Literal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_clause(num_vars: usize, rng: &mut StdRng) -> Clause {
    let mut vars = Vec::with_capacity(3);
    while vars.len() < 3 {
        let v = rng.gen_range(0..num_vars);
        if !vars.contains(&v) || num_vars < 3 {
            vars.push(v);
        }
    }
    Clause::new(vars.into_iter().map(|v| Literal {
        var: v,
        positive: rng.gen_bool(0.5),
    }))
}

/// A random 3CNF formula with `num_vars` variables and `num_clauses` clauses.  A
/// clause/variable ratio around 4.2 produces the hardest instances; the benchmark sweeps
/// use ratios on both sides of the threshold.
pub fn random_3cnf(num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    assert!(num_vars > 0, "formulas need at least one variable");
    let mut rng = StdRng::seed_from_u64(seed);
    CnfFormula::new(
        num_vars,
        (0..num_clauses).map(|_| random_clause(num_vars, &mut rng)),
    )
}

/// A random 3DNF formula with `num_vars` variables and `num_clauses` conjunctive clauses.
pub fn random_3dnf(num_vars: usize, num_clauses: usize, seed: u64) -> DnfFormula {
    assert!(num_vars > 0, "formulas need at least one variable");
    let mut rng = StdRng::seed_from_u64(seed);
    DnfFormula::new(
        num_vars,
        (0..num_clauses).map(|_| random_clause(num_vars, &mut rng)),
    )
}

/// A random ∀∃3CNF instance with the given quantifier prefix sizes.
pub fn random_forall_exists(
    universal_vars: usize,
    existential_vars: usize,
    num_clauses: usize,
    seed: u64,
) -> ForallExists3Cnf {
    let total = universal_vars + existential_vars;
    assert!(total > 0, "formulas need at least one variable");
    let mut rng = StdRng::seed_from_u64(seed);
    ForallExists3Cnf::new(
        universal_vars,
        existential_vars,
        (0..num_clauses).map(|_| random_clause(total, &mut rng)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_are_deterministic_per_seed() {
        assert_eq!(random_3cnf(6, 20, 1), random_3cnf(6, 20, 1));
        assert_ne!(random_3cnf(6, 20, 1), random_3cnf(6, 20, 2));
        assert_eq!(random_3dnf(6, 20, 1), random_3dnf(6, 20, 1));
    }

    #[test]
    fn clause_shapes() {
        let f = random_3cnf(10, 30, 3);
        assert_eq!(f.clauses.len(), 30);
        assert!(f.clauses.iter().all(|c| c.len() == 3));
        assert!(f.used_variables().iter().all(|&v| v < 10));
    }

    #[test]
    fn low_ratio_formulas_are_usually_satisfiable() {
        let sat_count = (0..10)
            .filter(|&seed| random_3cnf(12, 12, seed).solve().is_sat())
            .count();
        assert!(
            sat_count >= 8,
            "ratio 1.0 should be almost always satisfiable"
        );
    }

    #[test]
    fn high_ratio_formulas_are_usually_unsatisfiable() {
        let unsat_count = (0..10)
            .filter(|&seed| !random_3cnf(6, 60, seed).solve().is_sat())
            .count();
        assert!(
            unsat_count >= 8,
            "ratio 10 should be almost always unsatisfiable"
        );
    }

    #[test]
    fn forall_exists_prefix_sizes() {
        let q = random_forall_exists(3, 4, 10, 5);
        assert_eq!(q.universal_vars, 3);
        assert_eq!(q.existential_vars, 4);
        assert_eq!(q.clauses.len(), 10);
    }
}
