//! # `pw-workloads` — seeded workload generators for the benchmark harness
//!
//! Data-complexity is measured by sweeping the *database* size while keeping the query
//! fixed, so every experiment needs families of inputs of controllable size.  Two kinds of
//! family appear in the paper's classification:
//!
//! * **random / easy families** — random Codd-/e-/i-/g-/c-tables with instances drawn from
//!   their own `rep` (guaranteed "yes" cases) or perturbed (guaranteed-or-likely "no"
//!   cases).  On these the polynomial upper-bound algorithms of `pw-decide` scale
//!   gracefully; they populate the PTIME cells of Fig. 2.
//! * **hard families** — instances produced by the reductions of `pw-reductions` from
//!   random source problems (graphs near the 3-colourability threshold, 3CNF formulas near
//!   the satisfiability threshold, random 3DNF formulas, random ∀∃3CNF instances).  On
//!   these the NP / coNP / Π₂ᵖ procedures exhibit the exponential growth the lower bounds
//!   promise.
//!
//! All generators are deterministic given a seed ([`rand::rngs::StdRng`]), so benchmark
//! runs are reproducible.

pub mod decoupled;
pub mod formulas;
pub mod graphs;
pub mod mutations;
pub mod skewed;
pub mod streams;
pub mod strings;
pub mod tables;

pub use decoupled::{coupled_multirelation, decoupled_multirelation};
pub use formulas::{random_3cnf, random_3dnf, random_forall_exists};
pub use graphs::{planted_three_colorable, random_graph};
pub use mutations::{
    coupling_delta, mutation_stream, single_shard_delta, stable_delta_stream, MutationStream,
};
pub use skewed::{coupled_heavy_membership, skewed_membership, skewed_possibility, SkewedParams};
pub use streams::{
    flip_heavy_stream, flip_sparse_stream, StreamProblem, StreamRequest, StreamWorkload,
};
pub use strings::{stringify_constant, stringify_database, stringify_instance, stringify_table};
pub use tables::{
    member_instance, non_member_instance, random_codd_table, random_ctable, random_etable,
    random_gtable, random_itable, TableParams,
};
