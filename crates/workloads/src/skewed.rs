//! Skewed search trees: workloads whose work hides in one deep subtree.
//!
//! The static frontier scheduler carves the search tree breadth-first into
//! `threads × frontier_per_thread` subtree roots and lets workers drain them from one
//! shared queue.  That balances load *only if* the frontier subtrees are comparable in
//! size; these families construct the opposite — a wide fan of branches that die after
//! a short walk, beside exactly **one** branch hiding an exponential refutation — so
//! the static split degenerates to one busy worker while the rest exit, and the
//! dynamic work-stealing scheduler's subtree re-splitting is what restores parallelism.
//!
//! Two families, both condition-coupled into a single shard group (so the per-group
//! decomposition cannot help and the intra-group scheduler is all that matters):
//!
//! * [`skewed_membership`] / [`skewed_possibility`] — a selector choice fans `selectors`
//!   ways; every selector value but the last fails within a few nodes, the last gates a
//!   non-3-colorable constraint graph whose exhaustive refutation is the actual work.
//!   Both answers are **false**, so no scheduler can get lucky with an early witness —
//!   the full deep subtree must be explored either way.
//! * [`coupled_heavy_membership`] — the same non-3-colorable refutation with no
//!   selector fan: a uniformly deep single-group tree, measuring how the parallel
//!   backtracking path scales when the work is *not* skewed.
//!
//! All constructions are deterministic in `seed`.

use pw_condition::{Atom, Conjunction, Term, VarGen, Variable};
use pw_core::{CDatabase, CTable, CTuple};
use pw_relational::{Constant, Instance, Relation, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Palette size of the heavy region: refutations are proper-coloring searches with
/// this many colors, and the planted clique has `PALETTE + 1` vertices.
const PALETTE: usize = 3;

/// Parameters of the skewed families.
#[derive(Clone, Copy, Debug)]
pub struct SkewedParams {
    /// Width of the shallow fan (the selector's branch count).  Keep this above the
    /// static scheduler's frontier target (`threads × frontier_per_thread`, 64 for the
    /// default 8-thread config) so the static split stops right at the fan and hands
    /// the single deep branch to one worker.
    pub selectors: usize,
    /// Vertices of the heavy constraint graph; the deep subtree's size grows
    /// exponentially with this.
    pub heavy: usize,
    /// Probability of an extra random edge between heavy vertices (beyond the planted
    /// `PALETTE + 1` clique).  Denser graphs prune harder and shrink the refutation.
    pub edge_density: f64,
    /// RNG seed for the extra edges.
    pub seed: u64,
}

impl Default for SkewedParams {
    fn default() -> Self {
        SkewedParams {
            selectors: 72,
            heavy: 14,
            edge_density: 0.08,
            seed: 0,
        }
    }
}

impl SkewedParams {
    /// Everything default except the heavy-region size and seed (the benchmark sweep
    /// axis).
    pub fn with_heavy(heavy: usize, seed: u64) -> Self {
        SkewedParams {
            heavy,
            seed,
            ..SkewedParams::default()
        }
    }
}

/// The heavy constraint graph: a clique on the **last** `PALETTE + 1` vertices — so no
/// proper `PALETTE`-coloring exists, but the search only learns that at the deepest
/// levels — plus sparse random edges that give the refutation realistic pruning.
fn heavy_edges(params: &SkewedParams) -> Vec<(usize, usize)> {
    let m = params.heavy;
    assert!(
        m > PALETTE + 1,
        "heavy region must contain the planted clique"
    );
    let mut edges = Vec::new();
    for i in m - (PALETTE + 1)..m {
        for j in i + 1..m {
            edges.push((i, j));
        }
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    for i in 0..m - (PALETTE + 1) {
        for j in i + 1..m {
            if rng.gen_bool(params.edge_density) {
                edges.push((i, j));
            }
        }
    }
    edges
}

fn int_fact(values: &[i64]) -> Tuple {
    Tuple::new(values.iter().map(|&v| Constant::Int(v)))
}

/// Skewed membership: one selector row fans `selectors` ways, and only the **last**
/// selector value arms the heavy region.
///
/// The table (arity 2, one coupling group):
/// * a selector row `(0, y)` — mapped onto one of the selector facts `(0, c)`;
/// * one constant filler row `(0, c)` per selector fact, so coverage of the selector
///   facts never depends on `y`'s choice;
/// * heavy rows `(1, hᵢ)` with local condition `y = selectors`: present (and forced to
///   pick a palette fact, i.e. a color) exactly in the last selector branch, absent in
///   a single consistent step everywhere else.
///
/// The instance asks for all selector facts plus all `PALETTE` palette facts `(1, b)`.
/// Branches with `y ≠ selectors` leave the palette facts uncoverable and die after a
/// linear walk; the `y = selectors` branch is a proper-coloring search of the heavy
/// graph, which the planted clique refutes — exhaustively, at depth.  The answer is
/// always **false**.
pub fn skewed_membership(params: &SkewedParams) -> (CDatabase, Instance) {
    let s = params.selectors as i64;
    let mut vars = VarGen::new();
    let y = vars.fresh();
    let h: Vec<Variable> = (0..params.heavy).map(|_| vars.fresh()).collect();

    let mut global = Conjunction::truth();
    for (i, j) in heavy_edges(params) {
        global.push(Atom::neq(h[i], h[j]));
    }

    let mut rows: Vec<CTuple> = Vec::new();
    rows.push(CTuple::of_terms([Term::constant(0), Term::Var(y)]));
    for c in 1..=s {
        rows.push(CTuple::of_terms([Term::constant(0), Term::constant(c)]));
    }
    for &hi in &h {
        rows.push(CTuple::with_condition(
            [Term::constant(1), Term::Var(hi)],
            Conjunction::single(Atom::eq(y, s)),
        ));
    }
    let table = CTable::new("R", 2, global, rows).expect("uniform arity 2");

    let mut rel = Relation::empty(2);
    for c in 1..=s {
        rel.insert(int_fact(&[0, c])).expect("arity 2");
    }
    for b in 1..=PALETTE as i64 {
        rel.insert(int_fact(&[1, b])).expect("arity 2");
    }
    (CDatabase::single(table), Instance::single("R", rel))
}

/// Skewed possibility (covering): the first fact of the request picks one of
/// `selectors` producing rows, and only the **last** choice reaches the heavy region.
///
/// The table:
/// * selector rows `(0, u_c)` with local condition `g = c` — covering the first fact
///   `(0, 0)` through row `c` asserts `g = c` (and `u_c = 0`);
/// * a gate row `(1, 0)` with local condition `g = selectors` — the second fact `(1, 0)`
///   is coverable only in the last selector branch, so every other branch dies at
///   depth 2;
/// * heavy choice rows: fact `(j + 1, 0)` is produced by `PALETTE` rows `(j + 1, w_{j,a})`,
///   and the global condition holds `w_{j,a} ≠ w_{j',a'}` for every heavy edge `(j, j')`
///   with `a = a'`.  Covering a heavy fact through row `a` asserts `w_{j,a} = 0`, so two
///   conflicting choices collapse the store — covering all heavy facts is exactly a
///   proper coloring of the heavy graph, which the planted clique refutes.
///
/// The request asks for the selector fact, the gate fact and every heavy fact, so the
/// answer is always **false** and the refutation is exhaustive.
pub fn skewed_possibility(params: &SkewedParams) -> (CDatabase, Instance) {
    let s = params.selectors as i64;
    let mut vars = VarGen::new();
    let g = vars.fresh();
    let w: Vec<Vec<Variable>> = (0..params.heavy)
        .map(|_| (0..PALETTE).map(|_| vars.fresh()).collect())
        .collect();

    let mut global = Conjunction::truth();
    for (i, j) in heavy_edges(params) {
        for (&wia, &wja) in w[i].iter().zip(&w[j]) {
            global.push(Atom::neq(wia, wja));
        }
    }

    let mut rows: Vec<CTuple> = Vec::new();
    for c in 1..=s {
        let u = vars.fresh();
        rows.push(CTuple::with_condition(
            [Term::constant(0), Term::Var(u)],
            Conjunction::single(Atom::eq(g, c)),
        ));
    }
    rows.push(CTuple::with_condition(
        [Term::constant(1), Term::constant(0)],
        Conjunction::single(Atom::eq(g, s)),
    ));
    for (j, choices) in w.iter().enumerate() {
        for &wja in choices {
            rows.push(CTuple::of_terms([
                Term::constant(j as i64 + 2),
                Term::Var(wja),
            ]));
        }
    }
    let table = CTable::new("R", 2, global, rows).expect("uniform arity 2");

    let mut rel = Relation::empty(2);
    rel.insert(int_fact(&[0, 0])).expect("arity 2");
    rel.insert(int_fact(&[1, 0])).expect("arity 2");
    for j in 0..params.heavy as i64 {
        rel.insert(int_fact(&[j + 2, 0])).expect("arity 2");
    }
    (CDatabase::single(table), Instance::single("R", rel))
}

/// The heavy refutation with no skew: `heavy` rows, each free to pick any palette
/// color, under the planted-clique inequality graph.  A single coupling group whose
/// tree is uniformly deep — the control family showing the stealing scheduler at
/// parity with the static split when the static split is already balanced.  The answer
/// is always **false**.
pub fn coupled_heavy_membership(params: &SkewedParams) -> (CDatabase, Instance) {
    let mut vars = VarGen::new();
    let h: Vec<Variable> = (0..params.heavy).map(|_| vars.fresh()).collect();
    let mut global = Conjunction::truth();
    for (i, j) in heavy_edges(params) {
        global.push(Atom::neq(h[i], h[j]));
    }
    let table = CTable::i_table("R", 1, global, h.iter().map(|&hi| vec![Term::Var(hi)]))
        .expect("uniform arity 1");
    let mut rel = Relation::empty(1);
    for b in 1..=PALETTE as i64 {
        rel.insert(int_fact(&[b])).expect("arity 1");
    }
    (CDatabase::single(table), Instance::single("R", rel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_decide::{membership, possibility, Budget};

    fn small() -> SkewedParams {
        SkewedParams {
            selectors: 12,
            heavy: 8,
            edge_density: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn skewed_membership_is_single_group_and_false() {
        let (db, instance) = skewed_membership(&small());
        assert_eq!(db.shard_groups().len(), 1);
        assert!(!membership::decide(&db, &instance, Budget::default()).unwrap());
    }

    #[test]
    fn skewed_possibility_is_single_group_and_false() {
        let (db, instance) = skewed_possibility(&small());
        assert_eq!(db.shard_groups().len(), 1);
        let view = pw_core::View::identity(db);
        assert!(!possibility::decide(&view, &instance, Budget::default()).unwrap());
    }

    #[test]
    fn coupled_heavy_membership_is_false() {
        let (db, instance) = coupled_heavy_membership(&small());
        assert_eq!(db.shard_groups().len(), 1);
        assert!(!membership::decide(&db, &instance, Budget::default()).unwrap());
    }

    #[test]
    fn families_are_deterministic() {
        let p = small();
        let (a, ia) = skewed_membership(&p);
        let (b, ib) = skewed_membership(&p);
        assert!(a.tables()[0].alpha_equivalent(&b.tables()[0]));
        assert_eq!(ia, ib);
    }
}
