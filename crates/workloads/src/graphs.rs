//! Random graph generators for the 3-colourability based workloads.

use pw_solvers::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An Erdős–Rényi graph G(n, p): each of the n·(n−1)/2 edges is present independently with
/// probability `p`.
pub fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// A graph with a *planted* proper 3-colouring: vertices are split into three colour
/// classes and only cross-class edges are sampled, so the result is guaranteed
/// 3-colourable (a "yes" instance for the membership reductions) while still being dense
/// enough to be non-trivial.
pub fn planted_three_colorable(n: usize, edge_probability: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let colors: Vec<usize> = (0..n).map(|v| v % 3).collect();
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if colors[i] != colors[j] && rng.gen_bool(edge_probability.clamp(0.0, 1.0)) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use pw_solvers::coloring::is_three_colorable;

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        let a = random_graph(12, 0.4, 7);
        let b = random_graph(12, 0.4, 7);
        let c = random_graph(12, 0.4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.vertex_count(), 12);
    }

    #[test]
    fn edge_probability_extremes() {
        assert_eq!(random_graph(6, 0.0, 1).edge_count(), 0);
        assert_eq!(random_graph(6, 1.0, 1).edge_count(), 15);
    }

    #[test]
    fn planted_graphs_are_three_colorable() {
        for seed in 0..5 {
            let g = planted_three_colorable(9, 0.8, seed);
            assert!(is_three_colorable(&g), "seed {seed}");
        }
    }

    #[test]
    fn planted_graphs_have_no_intra_class_edges() {
        let g = planted_three_colorable(9, 1.0, 3);
        for (a, b) in g.edges() {
            assert_ne!(a % 3, b % 3);
        }
    }
}
