//! Decoupled multi-relation databases: many shards, no shared condition variables.
//!
//! The per-shard decision paths of `pw-decide` only engage when a database's coupling
//! graph ([`pw_core::CDatabase::shard_groups`]) actually splits, and the single-table
//! families of [`crate::tables`] never exercise that.  This family builds databases of
//! `relations` tables — cycling through the table classes so mixed databases dispatch
//! per group (Codd shards to matching, conditional shards to backtracking) — whose
//! variable sets are pairwise disjoint by construction: every generator draws its nulls
//! from the process-wide [`VarGen`] counter, so two tables never reuse a variable.
//!
//! Instances spanning all relations come from the [`crate::tables`] helpers, which
//! already operate on whole databases:
//! [`member_instance`](crate::tables::member_instance) applies one valuation across
//! every table and [`non_member_instance`](crate::tables::non_member_instance) perturbs
//! every relation.  A multi-relation request against these databases is exactly the
//! shape the joint search pays multiplicatively for — its search tree interleaves the
//! relations' choice points — while the per-shard paths solve each group independently
//! (additively).

use crate::tables::{random_codd_table, random_etable, random_gtable, TableParams};
use pw_condition::VarGen;
use pw_core::{CDatabase, CTable};

/// The class cycle: position `r % 5` picks the generator for relation `r`.  The i-table
/// generator is reused twice (positions 2 and 4) instead of including c-tables in the
/// default mix because i-tables force the backtracking search (the per-shard target)
/// while keeping the member/non-member instances deterministic.
fn generator_for(r: usize) -> fn(&str, &TableParams) -> CTable {
    match r % 5 {
        0 => crate::tables::random_itable,
        1 => random_codd_table,
        2 => crate::tables::random_itable,
        3 => random_etable,
        _ => random_gtable,
    }
}

/// A decoupled multi-relation database: `relations` tables named `R00`, `R01`, … of
/// cycling classes, each seeded with `params.seed + position` so the family is
/// deterministic and relations differ.  No two tables share a variable (fresh nulls per
/// generator call), so the coupling graph has one group per relation.
pub fn decoupled_multirelation(relations: usize, params: &TableParams) -> CDatabase {
    let tables: Vec<CTable> = (0..relations)
        .map(|r| {
            let p = TableParams {
                seed: params.seed.wrapping_add(r as u64),
                ..*params
            };
            generator_for(r)(&format!("R{r:02}"), &p)
        })
        .collect();
    CDatabase::new(tables)
}

/// A condition-coupled twin of [`decoupled_multirelation`]: the same tables, but every
/// table's global condition additionally mentions one shared "switch" variable
/// (`switch ≠ -1`, satisfiable and semantically inert), so all shards collapse into a
/// single coupling group and the decision paths must fall back to the joint search.
/// Workload pairs built from the same `params` therefore answer identically — the
/// coupling is what changes, not the represented worlds.
pub fn coupled_multirelation(relations: usize, params: &TableParams) -> CDatabase {
    let decoupled = decoupled_multirelation(relations, params);
    let mut vars = VarGen::new();
    let switch = vars.fresh();
    let tables: Vec<CTable> = decoupled
        .tables()
        .iter()
        .map(|t| {
            let mut global = t.global_condition().clone();
            global.push(pw_condition::Atom::neq(switch, -1));
            CTable::new(t.name(), t.arity(), global, t.tuples().iter().cloned())
                .expect("same rows, same arity")
        })
        .collect();
    CDatabase::new(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{member_instance, non_member_instance};
    use pw_decide::{membership, Budget};

    fn params(seed: u64) -> TableParams {
        TableParams {
            rows: 4,
            arity: 2,
            constants: 4,
            null_density: 0.4,
            seed,
        }
    }

    #[test]
    fn decoupled_databases_split_into_one_group_per_relation() {
        let db = decoupled_multirelation(6, &params(3));
        assert_eq!(db.table_count(), 6);
        assert_eq!(db.shard_groups().len(), 6);
        assert!(!db.tables_share_variables());
    }

    #[test]
    fn coupled_twin_collapses_to_one_group_with_the_same_worlds() {
        let p = params(5);
        let decoupled = decoupled_multirelation(4, &p);
        let coupled = coupled_multirelation(4, &p);
        assert_eq!(coupled.shard_groups().len(), 1);
        assert!(coupled.tables_share_variables());
        // The switch atom is inert: the same member instance is a member of both.
        let member = member_instance(&decoupled, &p);
        assert!(membership::decide(&decoupled, &member, Budget::default()).unwrap());
        assert!(membership::decide(&coupled, &member, Budget::default()).unwrap());
    }

    #[test]
    fn instances_span_every_relation() {
        let p = params(8);
        let db = decoupled_multirelation(5, &p);
        let member = member_instance(&db, &p);
        let non_member = non_member_instance(&db, &p);
        for table in db.tables() {
            assert!(member.relation(table.name()).is_some());
            assert!(non_member.relation(table.name()).is_some());
        }
        assert!(membership::decide(&db, &member, Budget::default()).unwrap());
    }
}
