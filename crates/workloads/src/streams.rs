//! Standing-query stream families: delta streams with *controlled verdict flips*, the
//! workload behind the verdict-flip subscription benchmark (`bench-stream`).
//!
//! Each relation of the base database carries a ground **anchor** row whose fact is
//! certain exactly while the row is present.  A *flip op* retracts the anchor (flipping
//! the relation's standing certainty true→false) or re-inserts it (false→true); every
//! other op is answer-stable in the sense of
//! [`stable_delta_stream`](crate::mutations::stable_delta_stream) — fresh-null inserts,
//! inert conjoins, retractions of stream-inserted rows — and *stationary*: a relation
//! holds at most two stream-inserted rows, and conjoins land only on stream-inserted
//! rows (retraction sheds the accumulated condition), so per-delta cost does not grow
//! down the stream.  The generator tracks a virtual row model across the stream, so
//! every op addresses its row by the position it actually occupies when the delta
//! applies.
//!
//! Two families:
//!
//! * **flip-sparse** — flips are rare (1 op in 16).  The serving-side win to measure:
//!   a standing set with per-relation dependencies skips almost every request on
//!   almost every delta, where a replay-everything baseline re-decides all of them.
//! * **flip-heavy** — every delta is a flip, round-robin over the relations.  Measures
//!   verdict-flip latency when notifications actually fire.
//!
//! The requests come back as [`StreamRequest`] specs (problem + facts), not
//! `pw_decide` types — this crate sits below the decision layer.  Bind them to
//! identity views of [`StreamWorkload::base`] in the caller.

use pw_condition::{Atom, Conjunction, Term, VarGen};
use pw_core::{CDatabase, CTable, CTuple, Delta};
use pw_relational::{rel, Instance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which decision problem a [`StreamRequest`] asks (the localizable two — possibility
/// and certainty decompose per shard group, which is what the subscription index
/// exploits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamProblem {
    /// `POSS(·, q)`: is some world containing all facts possible?
    Possibility,
    /// `CERT(·, q)`: do all facts hold in every world?
    Certainty,
}

/// One standing question over the stream's (identity-viewed) base database.
#[derive(Clone, Debug)]
pub struct StreamRequest {
    /// The problem to ask.
    pub problem: StreamProblem,
    /// The facts asked about.
    pub facts: Instance,
    /// Does the stream's flip schedule ever change this request's answer?  (Stable
    /// requests are the ones a subscription index should skip cheaply.)
    pub flippable: bool,
}

/// A standing-query stream workload: base database, standing requests, deltas.
#[derive(Clone, Debug)]
pub struct StreamWorkload {
    /// Family and size, e.g. `flip-sparse/r16x6/d10000`.
    pub label: String,
    /// The base database: one decoupled shard group per relation.
    pub base: CDatabase,
    /// The standing requests (three per relation: one flippable certainty, one stable
    /// possibility, one stable certainty).
    pub requests: Vec<StreamRequest>,
    /// The deltas, in application order; each touches exactly one relation.
    pub deltas: Vec<Delta>,
    /// How many of the deltas are flip ops (anchor retract/re-insert).
    pub flip_ops: usize,
}

/// The row model the generator tracks per relation, so every op addresses the position
/// its row occupies at application time.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RowKind {
    /// The flip anchor: a ground row whose fact is certain iff the row is present.
    Anchor,
    /// A second ground row, never touched — keeps one certainty verdict stably true.
    Keeper,
    /// A null row from the base build (conjoin target).
    Null,
    /// A null row the stream inserted (retract target).
    StreamNull,
}

struct RelationModel {
    name: String,
    anchor_constant: i64,
    rows: Vec<RowKind>,
}

impl RelationModel {
    fn position_of(&self, kind: RowKind) -> Option<usize> {
        self.rows.iter().position(|&k| k == kind)
    }

    fn last_position_of(&self, kind: RowKind) -> Option<usize> {
        self.rows.iter().rposition(|&k| k == kind)
    }
}

/// Flips are 1 op in 16: the standing set is quiet almost always, which is the regime
/// where skipping unaffected requests pays.
pub fn flip_sparse_stream(
    relations: usize,
    rows_per_relation: usize,
    deltas: usize,
    seed: u64,
) -> StreamWorkload {
    build_stream(
        "flip-sparse",
        relations,
        rows_per_relation,
        deltas,
        seed,
        16,
    )
}

/// Every delta is a flip op, round-robin over the relations: the latency of the
/// notification path itself.
pub fn flip_heavy_stream(
    relations: usize,
    rows_per_relation: usize,
    deltas: usize,
    seed: u64,
) -> StreamWorkload {
    build_stream("flip-heavy", relations, rows_per_relation, deltas, seed, 1)
}

/// `flip_every`: a delta is a flip op with probability `1/flip_every` (every delta
/// when 1).
fn build_stream(
    family: &str,
    relations: usize,
    rows_per_relation: usize,
    deltas: usize,
    seed: u64,
    flip_every: u32,
) -> StreamWorkload {
    let relations = relations.max(1);
    let rows_per_relation = rows_per_relation.max(3);
    let mut vars = VarGen::new();
    let mut models: Vec<RelationModel> = Vec::with_capacity(relations);
    let tables: Vec<CTable> = (0..relations)
        .map(|i| {
            let name = format!("S{i:02}");
            let anchor_constant = 100 + i as i64;
            let keeper_constant = 1000 + i as i64;
            let mut rows = vec![
                CTuple::of_terms([Term::constant(anchor_constant)]),
                CTuple::of_terms([Term::constant(keeper_constant)]),
            ];
            let mut kinds = vec![RowKind::Anchor, RowKind::Keeper];
            for _ in 2..rows_per_relation {
                // A null row under an inert condition: the shard is a genuine c-table,
                // so re-deciding it means real search work.
                let v = vars.fresh();
                rows.push(CTuple::with_condition(
                    [Term::Var(v)],
                    Conjunction::single(Atom::neq(v, -1)),
                ));
                kinds.push(RowKind::Null);
            }
            models.push(RelationModel {
                name: name.clone(),
                anchor_constant,
                rows: kinds,
            });
            CTable::new(&name, 1, Conjunction::truth(), rows).expect("stream table is well formed")
        })
        .collect();
    let base = CDatabase::new(tables);

    // Three standing requests per relation: the anchor certainty flips with the anchor
    // row; the anchor possibility and the keeper certainty never do.
    let requests: Vec<StreamRequest> = (0..relations)
        .flat_map(|i| {
            let anchor = 100 + i as i64;
            let keeper = 1000 + i as i64;
            let name = format!("S{i:02}");
            [
                StreamRequest {
                    problem: StreamProblem::Certainty,
                    facts: Instance::single(&name, rel![[anchor]]),
                    flippable: true,
                },
                StreamRequest {
                    problem: StreamProblem::Possibility,
                    facts: Instance::single(&name, rel![[anchor]]),
                    flippable: false,
                },
                StreamRequest {
                    problem: StreamProblem::Certainty,
                    facts: Instance::single(&name, rel![[keeper]]),
                    flippable: false,
                },
            ]
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(193).wrapping_add(7));
    let mut flip_ops = 0;
    let stream: Vec<Delta> = (0..deltas)
        .map(|tick| {
            let flip = flip_every == 1 || rng.gen_range(0..flip_every) == 0;
            let r = if flip_every == 1 {
                tick % relations
            } else {
                rng.gen_range(0..relations)
            };
            let model = &mut models[r];
            if flip {
                flip_ops += 1;
                match model.position_of(RowKind::Anchor) {
                    // Present: retract it — the anchor certainty flips true→false.
                    Some(pos) => {
                        model.rows.remove(pos);
                        Delta::new().retract(model.name.clone(), pos)
                    }
                    // Absent: re-insert it (appends) — false→true.
                    None => {
                        model.rows.push(RowKind::Anchor);
                        Delta::new().insert(
                            model.name.clone(),
                            CTuple::of_terms([Term::constant(model.anchor_constant)]),
                        )
                    }
                }
            } else {
                // Stable ops keep the stream *stationary*: at most two stream-inserted
                // null rows per relation, and inert conjoins land only on
                // stream-inserted rows, so a later retraction sheds the accumulated
                // condition.  Without both bounds the per-delta re-decision cost grows
                // down the stream and the benchmark measures growth, not the index.
                let stream_nulls = model
                    .rows
                    .iter()
                    .filter(|&&k| k == RowKind::StreamNull)
                    .count();
                let choice = match rng.gen_range(0..3u32) {
                    0 if stream_nulls < 2 => 0,
                    1 | 2 if stream_nulls > 0 => rng.gen_range(1..3u32),
                    _ if stream_nulls == 0 => 0,
                    _ => 1,
                };
                match choice {
                    // Insert a fresh null row (coverable by anything: answer-stable).
                    0 => {
                        model.rows.push(RowKind::StreamNull);
                        Delta::new().insert(
                            model.name.clone(),
                            CTuple::of_terms([Term::Var(vars.fresh())]),
                        )
                    }
                    // Retract the youngest stream-inserted row.
                    1 => {
                        let pos = model
                            .last_position_of(RowKind::StreamNull)
                            .expect("stream_nulls > 0");
                        model.rows.remove(pos);
                        Delta::new().retract(model.name.clone(), pos)
                    }
                    // Conjoin an inert inequality onto the youngest stream-inserted row.
                    _ => {
                        let pos = model
                            .last_position_of(RowKind::StreamNull)
                            .expect("stream_nulls > 0");
                        let v = vars.fresh();
                        Delta::new().conjoin(
                            model.name.clone(),
                            pos,
                            Conjunction::single(Atom::neq(v, -1)),
                        )
                    }
                }
            }
        })
        .collect();

    StreamWorkload {
        label: format!("{family}/r{relations}x{rows_per_relation}/d{deltas}"),
        base,
        requests,
        deltas: stream,
        flip_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_apply_in_sequence_and_are_deterministic() {
        for build in [flip_sparse_stream, flip_heavy_stream] {
            let a = build(4, 4, 60, 9);
            let b = build(4, 4, 60, 9);
            assert_eq!(a.deltas.len(), 60);
            assert_eq!(a.flip_ops, b.flip_ops);
            assert_eq!(a.requests.len(), 12, "three requests per relation");
            let mut db = a.base.clone();
            for (da, db_) in a.deltas.iter().zip(&b.deltas) {
                assert_eq!(format!("{da:?}").len(), format!("{db_:?}").len());
                let (next, change) = db.apply(da).expect("stream deltas apply in sequence");
                assert_eq!(change.changed_tables.len(), 1, "one relation per delta");
                db = next;
            }
        }
    }

    #[test]
    fn sparse_streams_flip_rarely_and_heavy_streams_always() {
        let sparse = flip_sparse_stream(8, 4, 400, 3);
        assert!(sparse.flip_ops > 0, "a 400-delta sparse stream flips");
        assert!(
            sparse.flip_ops < 100,
            "sparse flips ≈ 1/16: {}",
            sparse.flip_ops
        );
        let heavy = flip_heavy_stream(8, 4, 400, 3);
        assert_eq!(heavy.flip_ops, 400);
    }
}
