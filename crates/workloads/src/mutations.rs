//! Mutation streams: decoupled multi-relation databases plus deterministic delta
//! sequences, the workload family behind the incremental re-decision benchmark.
//!
//! A serving engine's traffic is *decide, mutate, re-decide*: most deltas touch one
//! relation — one shard group — and the interesting question is how much of the previous
//! decision survives.  [`mutation_stream`] builds that shape deterministically: a
//! [`decoupled_multirelation`] base (one coupling group per relation) and a seeded
//! sequence of single-relation [`Delta`]s mixing row insertions, retractions and
//! condition strengthenings.  Every delta leaves all other groups untouched, so an
//! incremental re-decision replays their memoized verdicts while a from-scratch decide
//! re-searches everything.
//!
//! [`coupling_delta`] builds the adversarial counterpart for tests: a delta that *merges*
//! two previously independent groups by threading a fresh shared variable through one row
//! of each (semantically inert — the conjoined atoms are satisfiable by every valuation —
//! but the coupling graph must collapse the groups and the memo must invalidate both).

use crate::decoupled::decoupled_multirelation;
use crate::tables::TableParams;
use pw_condition::{Atom, Conjunction, Term, VarGen};
use pw_core::{CDatabase, CTuple, Delta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mutation-stream workload: the base database and the deltas, in application order.
#[derive(Clone, Debug)]
pub struct MutationStream {
    /// The base database (`relations` decoupled shards).
    pub base: CDatabase,
    /// The deltas; each touches exactly one relation.
    pub deltas: Vec<Delta>,
}

/// Build a deterministic mutation stream: a [`decoupled_multirelation`] base of
/// `relations` shards and `deltas` single-relation deltas.  The op mix (insert a ground
/// row / strengthen a row's condition with an inert inequality / retract the youngest
/// row) is drawn from `params.seed`, and retractions are only generated for relations
/// whose current row count (tracked across the stream) is above one, so every delta is
/// applicable in sequence.
pub fn mutation_stream(relations: usize, params: &TableParams, deltas: usize) -> MutationStream {
    let base = decoupled_multirelation(relations, params);
    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_mul(31).wrapping_add(11));
    let mut rows: Vec<usize> = base.tables().iter().map(|t| t.len()).collect();
    let mut vars = VarGen::new();
    let out = (0..deltas)
        .map(|_| {
            let r = rng.gen_range(0..relations);
            let name = base.tables()[r].name().to_owned();
            let arity = base.tables()[r].arity();
            let roll = rng.gen_range(0..10u32);
            if roll < 5 {
                // Insert a ground row drawn from the generator's constant pool.
                let cells: Vec<Term> = (0..arity)
                    .map(|_| Term::constant(rng.gen_range(0..params.constants as i64)))
                    .collect();
                let row = CTuple::of_terms(cells);
                rows[r] += 1;
                Delta::new().insert(name, row)
            } else if roll < 8 || rows[r] <= 1 {
                // Strengthen a row's condition with an inert inequality on a fresh
                // variable: satisfiable in every world, but the shard's fingerprint
                // changes — the canonical "knowledge arrived" mutation.
                let row = rng.gen_range(0..rows[r]);
                let v = vars.fresh();
                Delta::new().conjoin(name, row, Conjunction::single(Atom::neq(v, -1)))
            } else {
                // Retract the youngest row.
                rows[r] -= 1;
                Delta::new().retract(name, rows[r])
            }
        })
        .collect();
    MutationStream { base, deltas: out }
}

/// An *answer-stable* delta stream over chosen shard positions: every delta touches one
/// relation drawn from `mutable`, and the ops are chosen so the standing decision
/// answers of a serving workload do not flip mid-stream —
///
/// * inserts append a row of **fresh nulls** (coverable by any fact, so membership /
///   possibility / certainty verdicts of the group survive);
/// * retractions only remove rows the stream itself inserted earlier;
/// * condition strengthenings conjoin an inert inequality on a fresh variable.
///
/// Each delta still changes the touched shard's fingerprint (dirtying exactly one
/// group), which is the contract the incremental re-decision benchmark measures: the
/// *work* moves, the *answers* stay comparable delta over delta.
pub fn stable_delta_stream(
    db: &CDatabase,
    mutable: &[usize],
    seed: u64,
    deltas: usize,
) -> Vec<Delta> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(13));
    let mut vars = VarGen::new();
    let base_rows: Vec<usize> = db.tables().iter().map(|t| t.len()).collect();
    let mut inserted: Vec<usize> = vec![0; db.table_count()];
    (0..deltas)
        .map(|_| {
            let pos = mutable[rng.gen_range(0..mutable.len())];
            let table = db.tables()[pos].name().to_owned();
            let arity = db.tables()[pos].arity();
            let roll = rng.gen_range(0..10u32);
            // A conjoin is only answer-stable on a row that is already uncertain (it
            // mentions a null): strengthening a *ground* row's condition would make a
            // previously certain fact retractable.  Target the first such row, and
            // conjoin on one of the row's own variables so no new variable enters the
            // shard (paths whose cost is exponential in the variable count — the Π₂ᵖ
            // enumeration — are not inflated by the mutation itself).
            let conjoin_target = db.tables()[pos]
                .tuples()
                .iter()
                .take(base_rows[pos])
                .enumerate()
                .find_map(|(i, r)| r.term_variables().next().map(|v| (i, v)));
            if roll < 4 || ((roll < 8 || inserted[pos] == 0) && conjoin_target.is_none()) {
                let cells: Vec<Term> = (0..arity).map(|_| Term::Var(vars.fresh())).collect();
                inserted[pos] += 1;
                Delta::new().insert(table, CTuple::of_terms(cells))
            } else if roll < 8 || inserted[pos] == 0 {
                let (row, v) = conjoin_target.expect("checked above");
                Delta::new().conjoin(table, row, Conjunction::single(Atom::neq(v, -1)))
            } else {
                inserted[pos] -= 1;
                Delta::new().retract(table, base_rows[pos] + inserted[pos])
            }
        })
        .collect()
}

/// A delta touching exactly the relation at `position`: strengthens row 0's condition
/// with an inert inequality on a fresh variable.  Changes the shard's fingerprint (and
/// dirties its group) without changing the represented worlds' facts.
pub fn single_shard_delta(db: &CDatabase, position: usize) -> Delta {
    let mut vars = VarGen::new();
    let v = vars.fresh();
    let table = db.tables()[position].name().to_owned();
    Delta::new().conjoin(table, 0, Conjunction::single(Atom::neq(v, -1)))
}

/// A delta that merges the coupling groups `a` and `b` of `db`: one fresh variable is
/// threaded through row 0 of the first table of each group (as an inert `v ≠ -1` /
/// `v ≠ -2` condition pair), so the two groups share a variable afterwards.  The
/// represented worlds are unchanged — the conjoined atoms hold under every valuation —
/// but the graph must collapse the groups into one and both memoized verdicts must
/// invalidate.
pub fn coupling_delta(db: &CDatabase, a: usize, b: usize) -> Delta {
    let mut vars = VarGen::new();
    let v = vars.fresh();
    let groups = db.shard_groups();
    let table_a = db.tables()[groups[a].members()[0]].name().to_owned();
    let table_b = db.tables()[groups[b].members()[0]].name().to_owned();
    Delta::new()
        .conjoin(table_a, 0, Conjunction::single(Atom::neq(v, -1)))
        .conjoin(table_b, 0, Conjunction::single(Atom::neq(v, -2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> TableParams {
        TableParams {
            rows: 4,
            arity: 2,
            constants: 4,
            null_density: 0.4,
            seed,
        }
    }

    #[test]
    fn streams_are_deterministic_and_applicable_in_sequence() {
        let a = mutation_stream(5, &params(3), 12);
        let b = mutation_stream(5, &params(3), 12);
        assert_eq!(a.deltas.len(), 12);
        let mut db_a = a.base.clone();
        let mut db_b = b.base.clone();
        for (da, dbp) in a.deltas.iter().zip(&b.deltas) {
            let (next_a, change_a) = db_a.apply(da).expect("stream deltas apply in sequence");
            let (next_b, change_b) = db_b.apply(dbp).expect("stream deltas apply in sequence");
            assert_eq!(change_a, change_b, "same seed, same stream");
            assert!(
                change_a.dirty_groups.len() <= 1,
                "stream deltas touch one shard"
            );
            (db_a, db_b) = (next_a, next_b);
        }
        // Variable identities come from the process-global `VarGen` counter, so the two
        // streams are alpha-equivalent rather than identical.
        for (ta, tb) in db_a.tables().iter().zip(db_b.tables()) {
            assert!(ta.alpha_equivalent(tb), "same seed, same stream shape");
        }
    }

    #[test]
    fn stable_streams_touch_only_the_mutable_positions() {
        let base = decoupled_multirelation(5, &params(7));
        let mutable = [0usize, 2];
        let deltas = stable_delta_stream(&base, &mutable, 42, 10);
        assert_eq!(deltas.len(), 10);
        let mut cur = base.clone();
        for delta in &deltas {
            let (next, change) = cur.apply(delta).expect("stable deltas apply in sequence");
            assert_eq!(change.changed_tables.len(), 1);
            assert!(mutable.contains(&change.changed_tables[0]));
            cur = next;
        }
        // Positions 1, 3 and 4 were never touched.
        for pos in [1usize, 3, 4] {
            assert_eq!(cur.tables()[pos], base.tables()[pos]);
        }
    }

    #[test]
    fn single_shard_delta_dirties_exactly_one_group() {
        let db = decoupled_multirelation(4, &params(9));
        let delta = single_shard_delta(&db, 2);
        let (next, change) = db.apply(&delta).unwrap();
        assert_eq!(change.changed_tables, vec![2]);
        assert_eq!(change.dirty_groups.len(), 1);
        assert_eq!(next.shard_groups().len(), 4);
    }

    #[test]
    fn coupling_delta_merges_the_two_groups() {
        let db = decoupled_multirelation(4, &params(5));
        assert_eq!(db.shard_groups().len(), 4);
        let delta = coupling_delta(&db, 1, 3);
        let (next, change) = db.apply(&delta).unwrap();
        assert_eq!(next.shard_groups().len(), 3, "two groups became one");
        assert_eq!(change.dirty_groups.len(), 1, "the merged group is dirty");
        assert_eq!((change.groups_before, change.groups_after), (4, 3));
    }
}
