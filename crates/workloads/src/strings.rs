//! String-heavy variants of the random workloads.
//!
//! The table generators of [`crate::tables`] draw their constants from a small integer
//! pool, which makes comparisons in the decision hot paths artificially cheap.  Production
//! databases overwhelmingly key on strings (ids, names, SKUs), so the benchmark harness
//! needs the *same* workload families with every integer constant replaced by a
//! deterministic string constant — long enough that a structural string compare costs
//! something, and with a long shared prefix so mismatches are not detected on the first
//! byte.  The rewriting is a bijection on constants, and QPTIME queries are generic
//! (Section 2.1), so every decision answer is preserved exactly.

use pw_condition::{Atom, Conjunction, Term};
use pw_core::{CDatabase, CTable, CTuple};
use pw_relational::{Constant, Instance, Relation, Tuple};

/// Map an integer constant to its string twin (identity on everything else).
///
/// The common `entity-` prefix plus zero padding makes equality checks walk most of the
/// string before deciding, which is exactly the cost profile interning is meant to remove.
pub fn stringify_constant(c: &Constant) -> Constant {
    match c.as_int() {
        Some(n) => Constant::str(format!("entity-{n:010}")),
        None => c.clone(),
    }
}

fn stringify_term(t: Term) -> Term {
    match t.as_const() {
        Some(c) => Term::from(stringify_constant(&c)),
        None => t,
    }
}

fn stringify_conjunction(c: &Conjunction) -> Conjunction {
    Conjunction::new(c.atoms().iter().map(|a| {
        let (x, y) = a.terms();
        if a.is_equality() {
            Atom::Eq(stringify_term(x), stringify_term(y))
        } else {
            Atom::Neq(stringify_term(x), stringify_term(y))
        }
    }))
}

/// Replace every integer constant of a table (rows, local and global conditions) by its
/// string twin.
pub fn stringify_table(t: &CTable) -> CTable {
    let rows = t.tuples().iter().map(|row| {
        CTuple::with_condition(
            row.terms.iter().map(|&t| stringify_term(t)),
            stringify_conjunction(&row.condition),
        )
    });
    CTable::new(
        t.name(),
        t.arity(),
        stringify_conjunction(t.global_condition()),
        rows,
    )
    .expect("stringifying preserves arities")
}

/// [`stringify_table`] over a whole database.
pub fn stringify_database(db: &CDatabase) -> CDatabase {
    CDatabase::new(db.tables().iter().map(stringify_table))
}

/// Replace every integer constant of a complete instance by its string twin.
pub fn stringify_instance(i: &Instance) -> Instance {
    let mut out = Instance::new();
    for (name, rel) in i.iter() {
        let mut new_rel = Relation::empty(rel.arity());
        for fact in rel.iter() {
            let mapped = Tuple::new(fact.iter().map(stringify_constant));
            new_rel.insert(mapped).expect("arity preserved");
        }
        out.insert_relation(name.clone(), new_rel);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{member_instance, random_ctable, TableParams};
    use pw_decide::{membership, Budget};

    #[test]
    fn stringified_membership_answers_match_integer_answers() {
        let p = TableParams::with_rows(12, 3);
        let db = CDatabase::single(random_ctable("T", &p));
        let yes = member_instance(&db, &p);
        let sdb = stringify_database(&db);
        let syes = stringify_instance(&yes);
        assert_eq!(
            membership::decide(&db, &yes, Budget::default()).unwrap(),
            membership::decide(&sdb, &syes, Budget::default()).unwrap(),
            "stringifying is a constant bijection, answers must agree"
        );
    }

    #[test]
    fn stringify_is_injective_on_the_pool() {
        let a = stringify_constant(&Constant::int(3));
        let b = stringify_constant(&Constant::int(30));
        assert_ne!(a, b);
        assert_eq!(a, stringify_constant(&Constant::int(3)));
        assert_eq!(
            stringify_constant(&Constant::str("kept")),
            Constant::str("kept")
        );
    }
}
