//! A guided tour of the paper's worked figures.
//!
//! Every figure of *On the Representation and Querying of Sets of Possible Worlds* is a
//! concrete construction: the Fig. 1 representation hierarchy, and one hardness gadget per
//! lower-bound theorem built from the running examples of Figs. 4 and 5.  This example
//! rebuilds each of them with the public API, prints its shape, and — where the instance is
//! small enough — decides it, so the output reads like a walk through the paper's
//! evaluation section.
//!
//! Run with `cargo run --example paper_figures`.

use possible_worlds::core::paper::fig1;
use possible_worlds::prelude::*;
use possible_worlds::reductions::{
    certainty_hardness, containment_hardness, containment_views, membership_hardness,
    possibility_hardness, uniqueness_hardness,
};
use possible_worlds::solvers::graph::Graph;
use possible_worlds::solvers::qbf::ForallExists3Cnf;
use possible_worlds::solvers::{paper_fig5_cnf, Clause, CnfFormula, DnfFormula, Literal};

fn heading(title: &str) {
    println!();
    println!("== {title} ==");
}

fn main() {
    let budget = Budget(200_000_000);

    // ---------------------------------------------------------------- Fig. 1
    heading("Fig. 1 — the representation hierarchy");
    let fig = fig1();
    for table in [&fig.ta, &fig.tb, &fig.tc, &fig.td, &fig.te] {
        println!("{table}");
    }
    println!(
        "Example 2.1: σ = {{x↦2, y↦3, z↦0, v↦5}} applied to the i-table Tc gives {}",
        fig.sigma
            .world_of(&CDatabase::single(fig.tc.clone()))
            .expect("σ satisfies the global condition")
            .relation("Tc")
            .unwrap()
    );

    // ---------------------------------------------------------------- Fig. 4
    heading("Fig. 4 — 3-colourability → membership (Theorem 3.1(2,3,4))");
    let graph = Graph::paper_fig4a();
    println!(
        "Fig. 4(a): the paper's graph with {} vertices and {} edges (3-colourable).",
        graph.vertex_count(),
        graph.edge_count()
    );
    let etable = membership_hardness::three_col_etable(&graph);
    let itable = membership_hardness::three_col_itable(&graph);
    let view = membership_hardness::three_col_view(&graph);
    println!(
        "Fig. 4(c): e-table with {} rows; I₀ has {} facts.",
        etable.view.db.row_count(),
        etable.instance.fact_count()
    );
    println!(
        "Fig. 4(b): i-table with {} rows and {} global inequalities.",
        itable.view.db.row_count(),
        itable.view.db.table("T").unwrap().global_condition().len()
    );
    println!(
        "Fig. 4(d): view of two tables with {} rows in total, query class {}.",
        view.view.db.row_count(),
        view.view.query_class()
    );
    println!(
        "MEMB answers (all should be `true`, the graph is 3-colourable): e-table {}, i-table {}, view {}",
        membership::decide(&etable.view.db, &etable.instance, budget).unwrap(),
        membership::decide(&itable.view.db, &itable.instance, budget).unwrap(),
        membership::view_membership(&view.view, &view.instance, budget).unwrap(),
    );

    // ---------------------------------------------------------------- Fig. 5
    heading("Fig. 5 — the running 3CNF / 3DNF / ∀∃3CNF formulas");
    let dnf = DnfFormula::paper_fig5();
    let cnf = paper_fig5_cnf();
    let qbf = ForallExists3Cnf::paper_fig5();
    println!(
        "3DNF: {} clauses over {} variables, tautology = {}.",
        dnf.clauses.len(),
        dnf.num_vars,
        dnf.is_tautology()
    );
    println!(
        "3CNF: {} clauses, satisfiable = {}.",
        cnf.clauses.len(),
        cnf.solve().is_sat()
    );
    println!("∀∃3CNF: {qbf}.");

    // ---------------------------------------------------------------- Fig. 6
    heading("Fig. 6 — non-3-colourability → uniqueness of a view (Theorem 3.2(4))");
    let uniq_view = uniqueness_hardness::non3col_uniq_view(&graph);
    println!(
        "Table T₀ has {} rows; the query is positive existential with ≠ ({}).",
        uniq_view.view.db.row_count(),
        uniq_view.view.query_class()
    );
    println!(
        "Is {{1}} the unique world of q₀(T₀)?  {}  (the graph *is* 3-colourable, so: no)",
        uniqueness::decide(&uniq_view.view, &uniq_view.instance, budget).unwrap()
    );

    // ------------------------------------------------------------ Figs. 7–10
    heading("Figs. 7, 8, 9, 10 — the containment lower bounds (Theorem 4.2)");
    let fig7 = containment_hardness::ae3cnf_cont_itable(&qbf);
    println!(
        "Fig. 7  (4.2(1), table ⊆ i-table): left {} rows, right {} rows, {} inequalities.",
        fig7.left.db.row_count(),
        fig7.right.db.row_count(),
        fig7.right.db.table("T").unwrap().global_condition().len()
    );
    let fig8 = containment_views::ae3cnf_cont_views_of_tables(&qbf);
    println!(
        "Fig. 8  (4.2(2), tables ⊆ view): left {} rows, right {} rows behind a {} query.",
        fig8.left.db.row_count(),
        fig8.right.db.row_count(),
        fig8.right.query_class()
    );
    let fig9 = containment_hardness::dnf_taut_cont_view_table(&dnf);
    println!(
        "Fig. 9  (4.2(4), view ⊆ table): left {} rows behind a {} query, right {} rows.",
        fig9.left.db.row_count(),
        fig9.left.query_class(),
        fig9.right.db.row_count()
    );
    let fig10 = containment_views::ae3cnf_cont_view_into_etable(&qbf);
    println!(
        "Fig. 10 (4.2(5), view ⊆ e-table): left {} rows behind a {} query, right {} rows (classes {} / {}).",
        fig10.left.db.row_count(),
        fig10.left.query_class(),
        fig10.right.db.row_count(),
        fig10.right.db.table("R").unwrap().classify(),
        fig10.right.db.table("S").unwrap().classify(),
    );
    let ctable_form = containment_views::ae3cnf_cont_ctable_into_etable(&qbf);
    println!(
        "4.2(3) (c-table ⊆ e-table, by the c-table algebra on the Fig. 10 view): left is a {} with {} rows.",
        ctable_form.left.db.classify(),
        ctable_form.left.db.row_count()
    );
    println!(
        "The Fig. 9 containment decides quickly — the 3DNF formula is not a tautology, so: {}",
        containment::decide(&fig9.left, &fig9.right, budget).unwrap()
    );
    println!("(The ∀∃ instances of Figs. 7/8/10 are left undecided here: two universal variables already mean minutes of Π₂ᵖ search; `cargo bench --bench containment` measures that growth.)");

    // --------------------------------------------------------------- Fig. 11
    heading("Fig. 11 — 3CNF satisfiability → unbounded possibility (Theorem 5.1(2,3))");
    let poss_e = possibility_hardness::sat_poss_etable(&cnf);
    let poss_i = possibility_hardness::sat_poss_itable(&cnf);
    println!(
        "e-table encoding: {} rows, pattern P with {} facts.",
        poss_e.view.db.row_count(),
        poss_e.facts.fact_count()
    );
    println!(
        "i-table encoding: {} rows, {} global inequalities.",
        poss_i.view.db.row_count(),
        poss_i.view.db.table("T").unwrap().global_condition().len()
    );
    println!(
        "POSS answers (the formula is satisfiable, so both `true`): e-table {}, i-table {}",
        possibility::decide(&poss_e.view, &poss_e.facts, budget).unwrap(),
        possibility::decide(&poss_i.view, &poss_i.facts, budget).unwrap(),
    );

    // --------------------------------------------------------------- Fig. 12
    heading("Fig. 12 — 3CNF satisfiability → POSS(1, DATALOG) (Theorem 5.2(3))");
    let poss_dl = possibility_hardness::sat_poss_datalog(&cnf);
    println!(
        "Gadget for the full Fig. 5 formula: {} rows across {} relations; the query is {}.",
        poss_dl.view.db.row_count(),
        poss_dl.view.db.table_count(),
        poss_dl.view.query_class()
    );
    // Deciding a Datalog view falls back to valuation enumeration (the query is outside the
    // c-table algebra), which is exponential in the number of nulls — exactly the point of
    // the NP-completeness result.  Decide a two-variable formula instead of Fig. 5's five.
    let tiny_cnf = CnfFormula::new(
        2,
        [
            Clause::new([Literal::pos(0), Literal::pos(1)]),
            Clause::new([Literal::neg(0), Literal::pos(1)]),
        ],
    );
    let tiny_dl = possibility_hardness::sat_poss_datalog(&tiny_cnf);
    println!(
        "On the two-variable formula (x∨y)(¬x∨y): goal fact possible = {}  (iff satisfiable — it is).",
        possibility::decide(&tiny_dl.view, &tiny_dl.facts, budget).unwrap()
    );

    // ----------------------------------------------------- Theorem 5.2(2)/5.3(2)
    heading("Theorems 5.2(2) and 5.3(2) — first order queries on tables");
    let fo_gadget = possibility_hardness::nontaut_poss_fo(&dnf);
    println!(
        "Gadget for the full Fig. 5 3DNF formula: {} rows, one null per literal occurrence.",
        fo_gadget.view.db.row_count()
    );
    // Same story: a first order view is decided by enumeration, so decide small formulas.
    let taut = DnfFormula::new(
        1,
        [
            Clause::new([Literal::pos(0)]),
            Clause::new([Literal::neg(0)]),
        ],
    );
    let not_taut = DnfFormula::new(2, [Clause::new([Literal::pos(0), Literal::neg(1)])]);
    let nontaut = possibility_hardness::nontaut_poss_fo(&not_taut);
    let cert = certainty_hardness::taut_cert_fo(&taut);
    println!(
        "POSS(1, first order) on x∧¬y: fact possible = {}  (iff NOT a tautology — it is not).",
        possibility::decide(&nontaut.view, &nontaut.facts, budget).unwrap()
    );
    println!(
        "CERT(1, first order) on x∨¬x: fact certain = {}  (iff a tautology — it is).",
        certainty::decide(&cert.view, &cert.facts, budget).unwrap()
    );
}
