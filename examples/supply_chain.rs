//! A supply-chain risk scenario: conditional facts, views, and reachability under
//! uncertainty.
//!
//! A manufacturer knows its direct suppliers but is uncertain about parts of the upstream
//! network: some supply links exist only under conditions (e.g. "vendor V ships from plant
//! P unless P is the plant that failed the audit").  The questions are the ones the paper's
//! framework answers directly:
//!
//! * is a disruption path from a raw-material site to the factory *possible*?
//! * is connectivity to a backup supplier *certain*?
//!
//! Reachability is the transitive closure — a DATALOG query.  Because the links carry
//! local conditions the database is a genuine c-table, so the certainty/possibility
//! questions exercise the general procedures; on the condition-free fragment (a g-table)
//! the same questions would dispatch to the PTIME naive-evaluation algorithm of
//! Theorem 5.3(1).
//!
//! The whole triage is submitted as **one batch** through
//! `pw_decide::batch::decide_all`, the front door a monitoring service would use: one
//! engine preprocesses the shared database once and runs the questions on a worker pool
//! (see `docs/BOOK.md`, "The parallel engine").
//!
//! Run with `cargo run --example supply_chain`.

use possible_worlds::decide::batch::{decide_all, DecisionRequest};
use possible_worlds::prelude::*;

fn main() {
    let mut vars = VarGen::new();
    // The audited plant is one of p1 / p2 — unknown which.
    let audited = vars.named("audited_plant");
    // The unknown source of the electronics sub-assembly.
    let electronics_src = vars.named("electronics_source");

    // supplies(from, to): the supply network with uncertain links.
    let supplies = CTable::new(
        "supplies",
        2,
        Conjunction::truth(),
        [
            // Known, unconditional links.
            CTuple::of_terms([Term::from("mine"), Term::from("p1")]),
            CTuple::of_terms([Term::from("mine"), Term::from("p2")]),
            CTuple::of_terms([Term::from("p3"), Term::from("factory")]),
            // p1 and p2 ship to p3 only if they are not the audited plant.
            CTuple::with_condition(
                [Term::from("p1"), Term::from("p3")],
                Conjunction::new([Atom::neq(audited, "p1")]),
            ),
            CTuple::with_condition(
                [Term::from("p2"), Term::from("p3")],
                Conjunction::new([Atom::neq(audited, "p2")]),
            ),
            // The electronics sub-assembly comes from an unknown source that feeds the factory.
            CTuple::of_terms([Term::Var(electronics_src), Term::from("factory")]),
            // The backup supplier always feeds the factory.
            CTuple::of_terms([Term::from("backup"), Term::from("factory")]),
        ],
    )
    .expect("well-formed c-table");

    let db = CDatabase::single(supplies);
    println!("Supply network as a c-table:\n{db}");

    // reach = transitive closure of supplies.
    let reach = Query::single(
        "reach",
        QueryDef::Datalog(DatalogProgram::transitive_closure("supplies", "reach")),
    );
    let view = View::new(reach, db.clone());

    // The triage queue: every (question, route) pair becomes one request; the batch runs
    // them against a single engine so the shared database is preprocessed once.
    let reach_fact = |from: &str, to: &str| {
        Instance::single(
            "reach",
            Relation::from_tuples(2, [Tuple::new([from.into(), to.into()])]),
        )
    };
    let questions = [
        (
            "Raw material reaches the factory (mine → factory)?",
            "mine",
            "factory",
        ),
        ("Backup supplier reaches the factory?", "backup", "factory"),
        ("Plant p1 reaches the factory?", "p1", "factory"),
        ("The mine reaches the backup supplier?", "mine", "backup"),
    ];
    let mut requests = Vec::new();
    for (_, from, to) in &questions {
        requests.push(DecisionRequest::Possibility {
            view: view.clone(),
            facts: reach_fact(from, to),
        });
        requests.push(DecisionRequest::Certainty {
            view: view.clone(),
            facts: reach_fact(from, to),
        });
    }
    // The identity view answers questions about the *links* themselves — same batch.
    let link_view = View::identity(db);
    let link = Instance::single(
        "supplies",
        Relation::from_tuples(2, [Tuple::new(["p1".into(), "p3".into()])]),
    );
    requests.push(DecisionRequest::Possibility {
        view: link_view.clone(),
        facts: link.clone(),
    });
    requests.push(DecisionRequest::Certainty {
        view: link_view.clone(),
        facts: link,
    });

    let outcomes = decide_all(&requests);
    for ((label, _, _), pair) in questions.iter().zip(outcomes.chunks(2)) {
        let possible = *pair[0].answer.as_ref().unwrap();
        let certain = *pair[1].answer.as_ref().unwrap();
        println!("{label:<55} possible: {possible:<5}  certain: {certain}");
    }
    let link_pair = &outcomes[outcomes.len() - 2..];
    println!(
        "\nDirect link p1 → p3:   possible: {}   certain: {}   [strategy: {}]",
        *link_pair[0].answer.as_ref().unwrap(),
        *link_pair[1].answer.as_ref().unwrap(),
        link_pair[1].strategy,
    );

    // How many structurally distinct worlds does the network have?  (Small enough here to
    // enumerate exhaustively — the audited plant and the unknown source are the only nulls.)
    let worlds = PossibleWorlds::new(&link_view.db)
        .enumerate(100_000)
        .unwrap();
    println!("Distinct possible networks over Δ ∪ Δ′: {}", worlds.len());

    // Note how the answers line up with intuition: mine→factory is certain (whichever plant
    // failed the audit, the other one still connects, and p3 feeds the factory), p1→factory
    // is only possible, and backup→factory is certain because that link is unconditional.
}
