//! An HR database with unknown values — the motivating scenario for null values.
//!
//! Employees have a department and a manager, but for recent hires one or both are still
//! unknown.  We model the database as a c-table database, then answer the questions a user
//! would actually ask: which facts are certain, which are merely possible, and what does a
//! fixed query (a join) certainly return?
//!
//! Run with `cargo run --example hr_incomplete`.

use possible_worlds::prelude::*;

fn main() {
    let mut vars = VarGen::new();
    // Unknowns: Bob's department, Carol's manager, Dana's department and manager.
    let bob_dept = vars.named("bob_dept");
    let carol_mgr = vars.named("carol_mgr");
    let dana_dept = vars.named("dana_dept");
    let dana_mgr = vars.named("dana_mgr");

    // works_in(employee, department) — a g-table: we at least know Dana is not in sales
    // (her badge does not open that floor), and Bob's department is Dana's department
    // (they were hired into the same team).
    let works_in = CTable::g_table(
        "works_in",
        2,
        Conjunction::new([Atom::neq(dana_dept, "sales"), Atom::eq(bob_dept, dana_dept)]),
        [
            vec![Term::from("alice"), Term::from("sales")],
            vec![Term::from("bob"), Term::Var(bob_dept)],
            vec![Term::from("carol"), Term::from("engineering")],
            vec![Term::from("dana"), Term::Var(dana_dept)],
        ],
    )
    .expect("well-formed g-table");

    // reports_to(employee, manager) — a c-table: Carol's manager is Eve *if* Carol is in
    // engineering (which she is — the condition shows how local conditions tie facts to
    // other unknowns in general).
    let reports_to = CTable::new(
        "reports_to",
        2,
        Conjunction::truth(),
        [
            CTuple::of_terms([Term::from("alice"), Term::from("frank")]),
            CTuple::with_condition(
                [Term::from("carol"), Term::Var(carol_mgr)],
                Conjunction::new([Atom::eq(carol_mgr, "eve")]),
            ),
            CTuple::of_terms([Term::from("dana"), Term::Var(dana_mgr)]),
        ],
    )
    .expect("well-formed c-table");

    let db = CDatabase::new([works_in, reports_to]);
    println!("The HR database:\n{db}");
    println!("Classification: {}\n", db.classify());

    let view = View::identity(db.clone());
    let budget = Budget::default();

    // ---- Possible vs. certain facts. ----
    let ask = |label: &str, relation: &str, row: Vec<Constant>| {
        let fact = Instance::single(relation, Relation::from_tuples(2, [Tuple::new(row)]));
        let possible = possibility::decide(&view, &fact, budget).unwrap();
        let certain = certainty::decide(&view, &fact, budget).unwrap();
        println!("{label:<45} possible: {possible:<5}  certain: {certain}");
    };
    ask(
        "Bob works in sales?",
        "works_in",
        vec!["bob".into(), "sales".into()],
    );
    ask(
        "Dana works in sales?",
        "works_in",
        vec!["dana".into(), "sales".into()],
    );
    ask(
        "Alice works in sales?",
        "works_in",
        vec!["alice".into(), "sales".into()],
    );
    ask(
        "Carol reports to Eve?",
        "reports_to",
        vec!["carol".into(), "eve".into()],
    );
    ask(
        "Dana reports to Frank?",
        "reports_to",
        vec!["dana".into(), "frank".into()],
    );

    // ---- A fixed query: who certainly shares a department with Bob? ----
    // colleagues(x) :- works_in(x, d), works_in("bob", d)
    // ("bob" is a constant, so it is spelled with QTerm::constant; bare string literals in
    // the qatom! macro denote query variables.)
    let colleagues = Query::single(
        "colleagues",
        QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("x")],
            [
                qatom!("works_in"; "x", "d"),
                possible_worlds::query::QueryAtom::new(
                    "works_in",
                    [QTerm::constant("bob"), QTerm::var("d")],
                ),
            ],
        ))),
    );
    let query_view = View::new(colleagues, db);
    for person in ["alice", "bob", "carol", "dana"] {
        let fact = Instance::single(
            "colleagues",
            Relation::from_tuples(1, [Tuple::new([person.into()])]),
        );
        let possible = possibility::decide(&query_view, &fact, budget).unwrap();
        let certain = certainty::decide(&query_view, &fact, budget).unwrap();
        println!(
            "{person:<8} is a colleague of Bob —  possible: {possible:<5}  certain: {certain}"
        );
    }

    // Dana is a certain colleague of Bob (their departments are equated by the global
    // condition), Alice only a possible one (only if Bob happens to be in sales).
}
