//! A miniature, fast version of the Fig. 2 complexity matrix: for each pair of
//! representations it reports which algorithm the containment dispatcher selects and the
//! paper's complexity class for that cell.  (The full timed sweep lives in the
//! `fig2-matrix` binary of the `pw-bench` crate; this example only needs the library.)
//!
//! Run with `cargo run --example complexity_matrix`.

use possible_worlds::prelude::*;
use possible_worlds::workloads::{
    random_codd_table, random_ctable, random_etable, random_gtable, random_itable, TableParams,
};

fn build(kind: &str, rows: usize, seed: u64) -> View {
    let params = TableParams {
        rows,
        arity: 2,
        constants: 6,
        null_density: 0.4,
        seed,
    };
    let table = match kind {
        "instance" => random_codd_table(
            "R",
            &TableParams {
                null_density: 0.0,
                ..params
            },
        ),
        "table" => random_codd_table("R", &params),
        "e-table" => random_etable("R", &params),
        "i-table" => random_itable("R", &params),
        "g-table" => random_gtable("R", &params),
        "c-table" => random_ctable("R", &params),
        _ => unreachable!(),
    };
    if kind == "view" {
        unreachable!("views are built separately");
    }
    View::identity(CDatabase::single(table))
}

fn build_view(rows: usize, seed: u64) -> View {
    let params = TableParams {
        rows,
        arity: 2,
        constants: 6,
        null_density: 0.4,
        seed,
    };
    let base = random_codd_table("T", &params);
    let q = Query::single(
        "R",
        QueryDef::Ucq(Ucq::single(ConjunctiveQuery::new(
            [QTerm::var("a"), QTerm::var("b")],
            [qatom!("T"; "a", "b")],
        ))),
    );
    View::new(q, CDatabase::single(base))
}

fn expected_class(row: &str, col: &str) -> &'static str {
    let row_simple = matches!(
        row,
        "instance" | "table" | "e-table" | "i-table" | "g-table"
    );
    match col {
        "instance" | "table" => {
            if row_simple {
                "PTIME"
            } else {
                "coNP"
            }
        }
        "e-table" => {
            if row_simple {
                "NP"
            } else {
                "Π₂ᵖ"
            }
        }
        _ => {
            if row == "instance" {
                "NP"
            } else {
                "Π₂ᵖ"
            }
        }
    }
}

fn main() {
    let kinds = [
        "instance", "table", "e-table", "i-table", "g-table", "c-table", "view",
    ];
    println!("CONT(row ⊆ column): paper class / selected algorithm (Fig. 2)\n");
    print!("{:<10}", "");
    for col in kinds {
        print!("| {col:<28}");
    }
    println!();
    println!("{}", "-".repeat(10 + 30 * kinds.len()));
    for row in kinds {
        print!("{row:<10}");
        let left = if row == "view" {
            build_view(8, 1)
        } else {
            build(row, 8, 1)
        };
        for col in kinds {
            let right = if col == "view" {
                build_view(8, 2)
            } else {
                build(col, 8, 2)
            };
            let strategy = containment::strategy(&left, &right);
            print!(
                "| {:<28}",
                format!("{} [{strategy}]", expected_class(row, col))
            );
        }
        println!();
    }
    println!();
    println!("Reading: freeze = the Theorem 4.1 homomorphism technique (polynomial or one NP");
    println!("membership call); world-enumeration = the Proposition 2.1(1) ∀∃ procedure used");
    println!("for the cells the lower bounds of Theorem 4.2 prove hard.");

    // One concrete decision per region, so the example actually runs the procedures.
    let budget = Budget(10_000_000);
    let t_left = build("table", 6, 11);
    let t_right = build("table", 6, 12);
    println!(
        "\nSample PTIME cell  (table ⊆ table):     answer = {:?}",
        containment::decide(&t_left, &t_right, budget)
    );
    let e_right = build("e-table", 6, 13);
    println!(
        "Sample NP cell     (table ⊆ e-table):   answer = {:?}",
        containment::decide(&t_left, &e_right, budget)
    );
    let i_right = build("i-table", 4, 14);
    let small_left = build("table", 4, 15);
    println!(
        "Sample Π₂ᵖ cell    (table ⊆ i-table):   answer = {:?}",
        containment::decide(&small_left, &i_right, budget)
    );
}
