//! Quickstart: the Fig. 1 representation hierarchy, possible worlds, and the five decision
//! problems on a single page.
//!
//! Run with `cargo run --example quickstart`.

use possible_worlds::core::paper::fig1;
use possible_worlds::prelude::*;

fn main() {
    // ---- Fig. 1: one table per level of the hierarchy. ----
    let fig = fig1();
    println!("The Fig. 1 representations and their classes:");
    for table in [&fig.ta, &fig.tb, &fig.tc, &fig.td, &fig.te] {
        println!("{table}");
    }

    // ---- Example 2.1: applying the valuation σ = {x↦2, y↦3, z↦0, v↦5}. ----
    let db = CDatabase::single(fig.tc.clone());
    let world = fig.sigma.world_of(&db).expect("σ satisfies x ≠ 0 ∧ y ≠ z");
    println!("σ(Tc) = {}", world.relation("Tc").unwrap());

    // ---- rep(·): enumerate the possible worlds of the i-table Tc. ----
    let worlds = PossibleWorlds::new(&db).enumerate(100_000).unwrap();
    println!(
        "Tc represents {} distinct worlds over Δ ∪ Δ′.",
        worlds.len()
    );

    // ---- Querying: is a fact possible?  certain? ----
    let view = View::identity(db);
    let wanted = Instance::single("Tc", rel![[0, 1, 2]]);
    let budget = Budget::default();
    println!(
        "(0,1,2) possible in Tc?   {}",
        possibility::decide(&view, &wanted, budget).unwrap()
    );
    println!(
        "(0,1,2) certain in Tc?    {}",
        certainty::decide(&view, &wanted, budget).unwrap()
    );

    // ---- Membership and uniqueness. ----
    println!(
        "Is σ(Tc) a possible world of Tc?  {}",
        membership::decide(&view.db, &world, budget).unwrap()
    );
    println!(
        "Is rep(Tc) the singleton {{σ(Tc)}}?  {}",
        uniqueness::decide(&view, &world, budget).unwrap()
    );

    // ---- Containment: the i-table Tc is contained in the plain table Ta. ----
    let ta_view = View::identity(CDatabase::single(fig.ta.renamed("Tc")));
    println!(
        "rep(Tc) ⊆ rep(Ta)?  {}",
        containment::decide(&view, &ta_view, budget).unwrap()
    );

    // ---- A positive existential query evaluated directly on the c-table Te. ----
    let te_db = CDatabase::single(fig.te.clone());
    let q = Ucq::single(ConjunctiveQuery::new(
        [QTerm::var("a")],
        [qatom!("Te"; "a", "b")],
    ));
    let q_te = eval_ucq(&q, &te_db, "FirstColumn").unwrap();
    println!("q(Te) as a c-table (the representation-system property):\n{q_te}");
}
